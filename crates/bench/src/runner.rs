//! Planner runners shared by the report binary and the Criterion benches.

use crate::bench_timeout;
use klotski_baselines::{JanusPlanner, MrcPlanner};
use klotski_core::cost::HeuristicMode;
use klotski_core::migration::{MigrationBuilder, MigrationOptions, MigrationSpec};
use klotski_core::planner::{AStarPlanner, DpPlanner, PlanStats, Planner, SearchBudget};
use klotski_core::{CostModel, EscMode, PlanError};
use klotski_topology::presets::{self, PresetId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Global lane-count override installed by the report binary's
/// `--threads N` flag; 0 means "use each experiment's own options".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides `MigrationOptions::threads` for every spec built through this
/// crate's constructors. Pass 0 to restore per-options values.
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The active lane-count override, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Applies the `--threads` override on top of an experiment's options.
fn with_override(opts: &MigrationOptions) -> MigrationOptions {
    match thread_override() {
        Some(t) => MigrationOptions {
            threads: t,
            ..opts.clone()
        },
        None => opts.clone(),
    }
}

/// Which planner (or Klotski ablation variant) to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerKind {
    /// Klotski with the A\* search planner (§4.4).
    KlotskiAStar,
    /// Klotski with the DP planner (§4.3).
    KlotskiDp,
    /// The greedy MRC baseline.
    Mrc,
    /// The Janus-style baseline.
    Janus,
    /// Ablation: A\* without the operation-block locality merge —
    /// per-symmetry-block actions (Figure 10's "Klotski w/o OB").
    WithoutOb,
    /// Ablation: no informed search — h ≡ 0 and no secondary priority
    /// (Figure 10's "Klotski w/o A\*").
    WithoutAStar,
    /// Ablation: no satisfiability caching (Figure 10's "Klotski w/o ESC").
    WithoutEsc,
}

impl PlannerKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            PlannerKind::KlotskiAStar => "Klotski-A*",
            PlannerKind::KlotskiDp => "Klotski-DP",
            PlannerKind::Mrc => "MRC",
            PlannerKind::Janus => "Janus",
            PlannerKind::WithoutOb => "Klotski w/o OB",
            PlannerKind::WithoutAStar => "Klotski w/o A*",
            PlannerKind::WithoutEsc => "Klotski w/o ESC",
        }
    }

    /// The four planners of Figures 8 and 9.
    pub const COMPARISON: [PlannerKind; 4] = [
        PlannerKind::Mrc,
        PlannerKind::Janus,
        PlannerKind::KlotskiDp,
        PlannerKind::KlotskiAStar,
    ];

    /// The four variants of Figure 10.
    pub const ABLATION: [PlannerKind; 4] = [
        PlannerKind::WithoutOb,
        PlannerKind::WithoutAStar,
        PlannerKind::WithoutEsc,
        PlannerKind::KlotskiAStar,
    ];
}

/// One planner execution's result.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub planner: PlannerKind,
    /// Plan cost, `None` on failure.
    pub cost: Option<f64>,
    /// Wall-clock planning time (includes failed runs up to their abort).
    pub time: Duration,
    /// Search counters (zeroed on hard failures).
    pub stats: PlanStats,
    /// Failure, if any.
    pub error: Option<PlanError>,
}

impl RunResult {
    /// True when the planner produced a plan.
    pub fn ok(&self) -> bool {
        self.cost.is_some()
    }

    /// "✗" for failures, formatted cost otherwise.
    pub fn cost_cell(&self) -> String {
        match self.cost {
            Some(c) => format!("{c:.1}"),
            None => "✗".into(),
        }
    }
}

/// Builds the migration spec for a preset with the given options
/// (bench-scaled topology).
pub fn spec_for(id: PresetId, opts: &MigrationOptions) -> MigrationSpec {
    let preset = presets::build_for_bench(id);
    MigrationBuilder::for_preset(&preset, &with_override(opts))
        .unwrap_or_else(|e| panic!("spec for {id} failed: {e}"))
}

/// Spec variant without the operation-block locality merge: every block is
/// split down to roughly symmetry-block size (≤ 2 switches per block, §4.1).
pub fn spec_without_ob(id: PresetId, opts: &MigrationOptions) -> Result<MigrationSpec, PlanError> {
    let preset = presets::build_for_bench(id);
    let opts = with_override(opts);
    // Largest natural group size determines the split factor needed to get
    // to ~2-switch blocks.
    let base = MigrationBuilder::for_preset(&preset, &opts)?;
    let largest = base
        .blocks
        .iter()
        .map(|b| b.switches.len())
        .max()
        .unwrap_or(2)
        .max(2);
    let mut fine = opts.clone();
    fine.block_scale = (largest as f64 / 2.0).max(1.0);
    MigrationBuilder::for_preset(&preset, &fine)
}

/// Runs one planner kind on a spec with the report's budget.
pub fn run_planner(kind: PlannerKind, spec: &MigrationSpec, alpha: f64) -> RunResult {
    let budget = SearchBudget {
        max_states: 50_000_000,
        time_limit: bench_timeout(),
        ..SearchBudget::default()
    };
    let cost = CostModel::new(alpha);
    let start = Instant::now();
    let outcome = match kind {
        PlannerKind::KlotskiAStar => AStarPlanner {
            cost,
            budget,
            ..AStarPlanner::default()
        }
        .plan(spec),
        PlannerKind::KlotskiDp => DpPlanner {
            cost,
            budget,
            ..DpPlanner::default()
        }
        .plan(spec),
        PlannerKind::Mrc => MrcPlanner { cost, budget }.plan(spec),
        PlannerKind::Janus => JanusPlanner { cost, budget }.plan(spec),
        // w/o OB runs A* itself; the spec must be built by `spec_without_ob`.
        PlannerKind::WithoutOb => AStarPlanner {
            cost,
            budget,
            ..AStarPlanner::default()
        }
        .plan(spec),
        PlannerKind::WithoutAStar => AStarPlanner {
            cost,
            budget,
            heuristic: HeuristicMode::None,
            secondary_priority: false,
            ..AStarPlanner::default()
        }
        .plan(spec),
        PlannerKind::WithoutEsc => AStarPlanner {
            cost,
            budget,
            esc: EscMode::Off,
            ..AStarPlanner::default()
        }
        .plan(spec),
    };
    let time = start.elapsed();
    match outcome {
        Ok(o) => RunResult {
            planner: kind,
            cost: Some(o.cost),
            time,
            stats: o.stats,
            error: None,
        },
        Err(e) => RunResult {
            planner: kind,
            cost: None,
            time,
            stats: PlanStats::default(),
            error: Some(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(PlannerKind::KlotskiAStar.label(), "Klotski-A*");
        assert_eq!(PlannerKind::WithoutEsc.label(), "Klotski w/o ESC");
        assert_eq!(PlannerKind::COMPARISON.len(), 4);
        assert_eq!(PlannerKind::ABLATION.len(), 4);
    }

    #[test]
    fn run_all_comparison_planners_on_a() {
        let spec = spec_for(PresetId::A, &MigrationOptions::default());
        let mut costs = Vec::new();
        for kind in PlannerKind::COMPARISON {
            let r = run_planner(kind, &spec, 0.0);
            assert!(r.ok(), "{} failed: {:?}", kind.label(), r.error);
            costs.push(r.cost.unwrap());
        }
        // Janus, DP, and A* agree on the optimum; MRC is >= it.
        assert!((costs[1] - costs[3]).abs() < 1e-9);
        assert!((costs[2] - costs[3]).abs() < 1e-9);
        assert!(costs[0] >= costs[3]);
    }

    #[test]
    fn without_ob_spec_has_fine_blocks() {
        let opts = MigrationOptions::default();
        let coarse = spec_for(PresetId::A, &opts);
        let fine = spec_without_ob(PresetId::A, &opts).unwrap();
        assert!(fine.num_blocks() > coarse.num_blocks());
        assert!(fine
            .blocks
            .iter()
            .all(|b| b.switches.len() <= 3 || !b.circuits.is_empty()));
    }

    #[test]
    fn failed_run_reports_cross() {
        let spec = spec_for(PresetId::EDmag, &MigrationOptions::default());
        let r = run_planner(PlannerKind::Mrc, &spec, 0.0);
        assert!(!r.ok());
        assert_eq!(r.cost_cell(), "✗");
    }
}
