//! Planning-service load generation: start an in-process daemon, hammer it
//! with concurrent clients, and report throughput, client-observed latency
//! percentiles, shed rate, and plan-cache effectiveness. The `report`
//! binary's `service` experiment renders a table and writes the raw
//! numbers to `BENCH_service.json`.

use crate::table::Table;
use klotski_npd::convert::region_to_npd;
use klotski_service::{Service, ServiceConfig};
use klotski_topology::presets::{self, PresetId};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One load-generation configuration's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceRow {
    /// Concurrent client threads.
    pub clients: usize,
    /// Planner worker threads in the daemon.
    pub workers: usize,
    /// Bounded queue depth.
    pub queue_depth: usize,
    /// Requests attempted (all clients).
    pub requests: usize,
    /// 200 responses.
    pub ok: usize,
    /// 503 responses (shed by backpressure).
    pub shed: usize,
    /// Successful requests per second, wall-clock.
    pub throughput_rps: f64,
    /// Client-observed latency percentiles over 200s, milliseconds.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Fraction of 200s answered from the shared plan cache.
    pub cache_hit_rate: f64,
}

/// The JSON document written to `BENCH_service.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceReport {
    pub rows: Vec<ServiceRow>,
}

/// Minimal HTTP POST; returns (status, cache header hit?, latency).
fn post(addr: SocketAddr, path: &str, body: &str) -> Option<(u16, bool, Duration)> {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .ok()?;
    let msg = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).ok()?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).ok()?;
    let head_end = reply.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&reply[..head_end]).ok()?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let cached = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("x-klotski-cache:") && l.contains("hit"));
    Some((status, cached, start.elapsed()))
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Runs one load point: `clients` threads each issuing `per_client`
/// plan/audit submissions against a fresh daemon.
pub fn measure(clients: usize, per_client: usize, workers: usize) -> ServiceRow {
    let config = ServiceConfig {
        workers,
        queue_depth: 16,
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    let queue_depth = config.queue_depth;
    let service = Service::start(config).expect("bind service");
    let addr = service.local_addr();

    // Three request classes: default plan, tighter-θ plan (distinct cache
    // key), audit of the default document. The repetition across clients
    // is the bursty duplicate-submission pattern the cache exists for.
    let npd_a = Arc::new(
        region_to_npd(&presets::config(PresetId::A))
            .to_json_pretty()
            .unwrap(),
    );
    let paths = ["/v1/plan", "/v1/plan?theta=0.8", "/v1/audit"];

    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let npd = Arc::clone(&npd_a);
            std::thread::spawn(move || {
                let mut results = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let path = paths[(c + r) % paths.len()];
                    if let Some(outcome) = post(addr, path, &npd) {
                        results.push(outcome);
                    }
                    if outcome_was_shed(&results) {
                        // Brief backoff so shed clients retry instead of
                        // spinning the queue-full path.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                results
            })
        })
        .collect();
    let results: Vec<(u16, bool, Duration)> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    let wall = start.elapsed();
    service.shutdown();

    let ok: Vec<&(u16, bool, Duration)> = results.iter().filter(|(s, _, _)| *s == 200).collect();
    let shed = results.iter().filter(|(s, _, _)| *s == 503).count();
    let hits = ok.iter().filter(|(_, cached, _)| *cached).count();
    let mut latencies: Vec<Duration> = ok.iter().map(|(_, _, d)| *d).collect();
    latencies.sort_unstable();
    ServiceRow {
        clients,
        workers,
        queue_depth,
        requests: clients * per_client,
        ok: ok.len(),
        shed,
        throughput_rps: ok.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        cache_hit_rate: if ok.is_empty() {
            0.0
        } else {
            hits as f64 / ok.len() as f64
        },
    }
}

fn outcome_was_shed(results: &[(u16, bool, Duration)]) -> bool {
    matches!(results.last(), Some((503, _, _)))
}

/// Merges one experiment's section into `BENCH_service.json`, preserving
/// every other key already in the document — the `service` and `fleet`
/// experiments share the file without clobbering each other. Returns the
/// note rendered under the experiment's table.
pub(crate) fn write_bench_section(key: &str, section_json: &str) -> String {
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde::Value>(&text).ok())
        .and_then(|value| match value {
            serde::Value::Object(map) => Some(map),
            _ => None,
        })
        .unwrap_or_default();
    let section = match serde_json::from_str::<serde::Value>(section_json) {
        Ok(v) => v,
        Err(e) => return format!("could not parse {key} section: {e}"),
    };
    doc.insert(key.to_string(), section);
    match serde_json::to_string_pretty(&serde::Value::Object(doc)) {
        Ok(json) => match std::fs::write(path, json) {
            Ok(()) => format!("wrote {key} into {path}"),
            Err(e) => format!("could not write {path}: {e}"),
        },
        Err(e) => format!("could not serialize {path}: {e}"),
    }
}

/// The per-arm sample whose throughput is the median of its round samples
/// (one preempted round cannot drag an arm's reported numbers).
fn median_row(mut samples: Vec<ServiceRow>) -> ServiceRow {
    samples.sort_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps));
    samples.remove(samples.len() / 2)
}

/// The `service` experiment: sweeps client counts against a fixed daemon
/// shape, renders the table, and merges its rows into
/// `BENCH_service.json`.
///
/// The client-count arms are measured in interleaved rounds with a
/// rotating start (the `full_scale` pattern): arm-at-a-time measurement
/// folds machine drift — frequency scaling, page-cache warm-up — entirely
/// into whichever arm runs last, and a fixed order hands each arm a
/// systematic inheritance from its predecessor. `KLOTSKI_SERVICE_ROUNDS`
/// sets the rounds (default 3); each arm reports its median round.
pub fn service() -> String {
    let workers = klotski_parallel::default_lanes().clamp(2, 4);
    let arms = [4usize, 16, 32];
    let rounds = crate::env_usize("KLOTSKI_SERVICE_ROUNDS", 3).max(1);
    let mut samples: Vec<Vec<ServiceRow>> = vec![Vec::new(); arms.len()];
    for round in 0..rounds {
        for k in 0..arms.len() {
            let i = (round + k) % arms.len();
            samples[i].push(measure(arms[i], 8, workers));
        }
    }
    let rows: Vec<ServiceRow> = samples.into_iter().map(median_row).collect();
    let report = ServiceReport { rows };
    let json = serde_json::to_string_pretty(&report.rows).expect("report serializes");
    let note = write_bench_section("rows", &json);
    let mut t = Table::new([
        "clients",
        "workers",
        "requests",
        "ok",
        "shed",
        "rps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "cache hit",
    ]);
    for r in &report.rows {
        t.row([
            r.clients.to_string(),
            r.workers.to_string(),
            r.requests.to_string(),
            r.ok.to_string(),
            r.shed.to_string(),
            format!("{:.1}", r.throughput_rps),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.0}%", r.cache_hit_rate * 100.0),
        ]);
    }
    format!(
        "== Planning service under concurrent load (preset A, queue depth 16) ==\n{}\n[{note}]",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_exact_ranks() {
        let samples: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(percentile(&samples, 0.5), 5.0);
        assert_eq!(percentile(&samples, 0.99), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn small_load_point_measures_cleanly() {
        let row = measure(4, 3, 2);
        assert_eq!(row.requests, 12);
        assert!(row.ok + row.shed <= row.requests);
        assert!(row.ok > 0, "no request succeeded");
        assert!(row.throughput_rps > 0.0);
        assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        assert!((0.0..=1.0).contains(&row.cache_hit_rate));
    }
}
