//! The evaluation experiments: one function per table/figure of §6.
//!
//! Every function renders the same rows/series its paper counterpart
//! reports and returns them as a string (the `report` binary prints them;
//! tests assert on their structure). `EXPERIMENTS.md` records the measured
//! outputs against the paper's.

use crate::runner::{run_planner, spec_for, spec_without_ob, PlannerKind, RunResult};
use crate::table::{ratio, Table};
use klotski_core::migration::{MigrationOptions, MigrationSpec};
use klotski_core::BlockClass;
use klotski_topology::presets::{self, PresetId};

/// Runs the comparison planners on one spec, w/o-OB handled separately.
fn run_matrix(spec: &MigrationSpec, kinds: &[PlannerKind]) -> Vec<RunResult> {
    kinds.iter().map(|&k| run_planner(k, spec, 0.0)).collect()
}

/// The reference runtime (Klotski-A\*) within a result set.
fn astar_time(results: &[RunResult]) -> std::time::Duration {
    results
        .iter()
        .find(|r| r.planner == PlannerKind::KlotskiAStar)
        .map(|r| r.time)
        .unwrap_or_default()
}

/// The optimal cost within a result set (min over successful planners).
fn optimal_cost(results: &[RunResult]) -> Option<f64> {
    results
        .iter()
        .filter_map(|r| r.cost)
        .min_by(|a, b| a.total_cmp(b))
}

/// Renders one planner-comparison table (normalized cost + time), shared by
/// Figures 8 and 9.
fn comparison_table(rows: &[(String, Vec<RunResult>)]) -> String {
    let mut cost = Table::new(
        ["topology"]
            .into_iter()
            .map(String::from)
            .chain(PlannerKind::COMPARISON.iter().map(|k| k.label().into()))
            .collect::<Vec<String>>(),
    );
    let mut time = Table::new(
        ["topology"]
            .into_iter()
            .map(String::from)
            .chain(PlannerKind::COMPARISON.iter().map(|k| k.label().into()))
            .collect::<Vec<String>>(),
    );
    for (name, results) in rows {
        let opt = optimal_cost(results);
        let base = astar_time(results);
        let mut cost_row = vec![name.clone()];
        let mut time_row = vec![name.clone()];
        for r in results {
            cost_row.push(match (r.cost, opt) {
                (Some(c), Some(o)) if o > 0.0 => format!("{:.2}", c / o),
                (Some(c), _) => format!("{c:.1}"),
                (None, _) => "✗".into(),
            });
            time_row.push(if r.ok() {
                ratio(r.time, base)
            } else {
                "✗".into()
            });
        }
        cost.row(cost_row);
        time.row(time_row);
    }
    format!(
        "(a) plan cost, normalized by the optimal cost\n{}\n(b) planning time, normalized by Klotski-A*\n{}",
        cost.render(),
        time.render()
    )
}

/// Figure 8: scalability — the four planners across topologies A–E under
/// the HGRID v1→v2 migration.
pub fn fig8() -> String {
    let mut rows = Vec::new();
    for id in PresetId::SCALABILITY {
        let spec = spec_for(id, &MigrationOptions::default());
        rows.push((id.to_string(), run_matrix(&spec, &PlannerKind::COMPARISON)));
    }
    format!(
        "== Figure 8: scalability over topologies A-E ==\n{}",
        comparison_table(&rows)
    )
}

/// Figure 9: generality — the four planners across migration types
/// (E, E-DMAG, E-SSW). MRC and Janus cross on the topology-changing DMAG.
pub fn fig9() -> String {
    let mut rows = Vec::new();
    for id in [PresetId::E, PresetId::EDmag, PresetId::ESsw] {
        let spec = spec_for(id, &MigrationOptions::default());
        rows.push((id.to_string(), run_matrix(&spec, &PlannerKind::COMPARISON)));
    }
    format!(
        "== Figure 9: generality over migration types ==\n{}",
        comparison_table(&rows)
    )
}

/// Figure 10: design ablations — Klotski-A\* against w/o OB, w/o A\*, and
/// w/o ESC over topologies A–E.
pub fn fig10() -> String {
    let opts = MigrationOptions::default();
    let mut cost = Table::new(
        ["topology"]
            .into_iter()
            .map(String::from)
            .chain(PlannerKind::ABLATION.iter().map(|k| k.label().into()))
            .collect::<Vec<String>>(),
    );
    let mut time = Table::new(
        ["topology"]
            .into_iter()
            .map(String::from)
            .chain(PlannerKind::ABLATION.iter().map(|k| k.label().into()))
            .collect::<Vec<String>>(),
    );
    for id in PresetId::SCALABILITY {
        let spec = spec_for(id, &opts);
        let mut results = Vec::new();
        for kind in PlannerKind::ABLATION {
            let r = if kind == PlannerKind::WithoutOb {
                match spec_without_ob(id, &opts) {
                    Ok(fine) => run_planner(kind, &fine, 0.0),
                    Err(e) => RunResult {
                        planner: kind,
                        cost: None,
                        time: Default::default(),
                        stats: Default::default(),
                        error: Some(e),
                    },
                }
            } else {
                run_planner(kind, &spec, 0.0)
            };
            results.push(r);
        }
        let opt = optimal_cost(&results);
        let base = astar_time(&results);
        cost.row(
            std::iter::once(id.to_string()).chain(results.iter().map(|r| match (r.cost, opt) {
                (Some(c), Some(o)) if o > 0.0 => format!("{:.2}", c / o),
                (Some(c), _) => format!("{c:.1}"),
                (None, _) => "✗".into(),
            })),
        );
        time.row(
            std::iter::once(id.to_string()).chain(results.iter().map(|r| {
                if r.ok() {
                    ratio(r.time, base)
                } else {
                    "✗".into()
                }
            })),
        );
    }
    format!(
        "== Figure 10: impact of Klotski design choices ==\n(a) plan cost, normalized\n{}\n(b) planning time, normalized by Klotski-A*\n{}",
        cost.render(),
        time.render()
    )
}

/// Figure 11: operation-block granularity sweep (0.25×–4× the default
/// policy) on topology E.
pub fn fig11() -> String {
    let mut t = Table::new([
        "# blocks", "blocks", "min cost", "A* time", "DP time", "DP/A*",
    ]);
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let opts = MigrationOptions {
            block_scale: scale,
            ..MigrationOptions::default()
        };
        let spec = spec_for(PresetId::E, &opts);
        let astar = run_planner(PlannerKind::KlotskiAStar, &spec, 0.0);
        let dp = run_planner(PlannerKind::KlotskiDp, &spec, 0.0);
        t.row([
            format!("{scale}x"),
            spec.num_blocks().to_string(),
            astar.cost_cell(),
            format!("{:.2}s", astar.time.as_secs_f64()),
            if dp.ok() {
                format!("{:.2}s", dp.time.as_secs_f64())
            } else {
                "✗".into()
            },
            if astar.ok() && dp.ok() {
                ratio(dp.time, astar.time)
            } else {
                "-".into()
            },
        ]);
    }
    format!(
        "== Figure 11: impact of operation blocks (topology E) ==\n{}",
        t.render()
    )
}

/// Figure 12: utilization-rate-bound sweep θ ∈ {55..95}% on topology E,
/// with the demand matrix held fixed.
pub fn fig12() -> String {
    let mut t = Table::new(["theta", "optimal cost", "A* time", "DP time", "DP/A*"]);
    for theta in [0.55, 0.65, 0.75, 0.85, 0.95] {
        let opts = MigrationOptions {
            theta,
            ..MigrationOptions::default()
        };
        let spec = spec_for(PresetId::E, &opts);
        let astar = run_planner(PlannerKind::KlotskiAStar, &spec, 0.0);
        let dp = run_planner(PlannerKind::KlotskiDp, &spec, 0.0);
        t.row([
            format!("{:.0}%", theta * 100.0),
            astar.cost_cell(),
            format!("{:.2}s", astar.time.as_secs_f64()),
            format!("{:.2}s", dp.time.as_secs_f64()),
            ratio(dp.time, astar.time),
        ]);
    }
    format!(
        "== Figure 12: impact of utilization rate bound (topology E) ==\n{}",
        t.render()
    )
}

/// Figure 13: cost-function sweep α ∈ [0, 1] on topology E.
pub fn fig13() -> String {
    let spec = spec_for(PresetId::E, &MigrationOptions::default());
    let mut t = Table::new(["alpha", "optimal cost", "A* time", "DP time", "DP/A*"]);
    for alpha in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let astar = run_planner(PlannerKind::KlotskiAStar, &spec, alpha);
        let dp = run_planner(PlannerKind::KlotskiDp, &spec, alpha);
        t.row([
            format!("{alpha}"),
            astar.cost_cell(),
            format!("{:.2}s", astar.time.as_secs_f64()),
            format!("{:.2}s", dp.time.as_secs_f64()),
            ratio(dp.time, astar.time),
        ]);
    }
    format!(
        "== Figure 13: impact of the cost function (topology E) ==\n{}",
        t.render()
    )
}

/// Physical-duration model for Table 1: days per switch-level operation by
/// block class (installs take real on-site work; circuit drains are
/// config pushes), plus fixed per-phase validation overhead.
fn duration_days(spec: &MigrationSpec, phases: usize) -> f64 {
    let per_op_days = |class: BlockClass| match class {
        BlockClass::FaGrid | BlockClass::Ssw => 0.25,
        BlockClass::Ma => 0.15,
        BlockClass::DirectCircuit => 0.02,
    };
    let work: f64 = spec
        .blocks
        .iter()
        .map(|b| {
            let class = spec.actions.kind(b.kind).class;
            b.action_weight() as f64 * per_op_days(class)
        })
        .sum();
    work + phases as f64 * 3.0
}

/// Table 1: migration statistics per DC for the three migration types.
pub fn table1() -> String {
    let mut t = Table::new([
        "migration",
        "switches",
        "circuits",
        "capacity",
        "duration",
        "paper",
    ]);
    let cases = [
        (
            PresetId::E,
            "HGRID",
            "320-352 sw, 13.7k-26.8k ckt, 1.3-6.3T, 4-9 months",
        ),
        (
            PresetId::ESsw,
            "SSW Forklift",
            "144-288 sw, 14.1k-40.3k ckt, 14-16T, 3-4 months",
        ),
        (
            PresetId::EDmag,
            "DMAG",
            "48-64 sw, 1.6k-5.6k ckt, 0.2-0.5T, 1-2 weeks",
        ),
    ];
    for (id, label, paper) in cases {
        let spec = spec_for(id, &MigrationOptions::default());
        // Operated switches and the circuits they touch.
        let switches: usize = spec.blocks.iter().map(|b| b.switches.len()).sum();
        let mut seen = vec![false; spec.topology.num_circuits()];
        let mut circuits = 0usize;
        let mut capacity_gbps = 0.0;
        for b in &spec.blocks {
            for &s in &b.switches {
                for &(c, _) in spec.topology.neighbors(s) {
                    if !seen[c.index()] {
                        seen[c.index()] = true;
                        circuits += 1;
                        capacity_gbps += spec.topology.circuit(c).capacity_gbps;
                    }
                }
            }
            for &c in &b.circuits {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    circuits += 1;
                    capacity_gbps += spec.topology.circuit(c).capacity_gbps;
                }
            }
        }
        let astar = run_planner(PlannerKind::KlotskiAStar, &spec, 0.0);
        let phases = astar.cost.map(|c| c as usize).unwrap_or(spec.num_blocks());
        let days = duration_days(&spec, phases);
        t.row([
            label.to_string(),
            switches.to_string(),
            circuits.to_string(),
            format!("{:.1}T", capacity_gbps / 1000.0),
            if days >= 30.0 {
                format!("{:.1} months", days / 30.0)
            } else {
                format!("{:.1} weeks", days / 7.0)
            },
            paper.to_string(),
        ]);
    }
    format!("== Table 1: migration statistics per DC ==\n{}", t.render())
}

/// Table 3: configurations of the evaluation topologies.
pub fn table3() -> String {
    let mut t = Table::new([
        "topology", "switches", "circuits", "actions", "blocks", "types",
    ]);
    for id in PresetId::ALL {
        let preset = presets::build_for_bench(id);
        let spec = spec_for(id, &MigrationOptions::default());
        // "Switches"/"circuits" in Table 3 describe the pre-migration
        // network: exclude not-yet-installed hardware.
        let absent = preset.handles.hgrid_v2_switches().len()
            + preset.handles.ssw_v2_switches().len()
            + preset
                .handles
                .ma
                .as_ref()
                .map(|m| m.all_mas().len())
                .unwrap_or(0);
        t.row([
            id.to_string(),
            (preset.topology.num_switches() - absent).to_string(),
            preset.topology.num_circuits().to_string(),
            spec.num_switch_actions().to_string(),
            spec.num_blocks().to_string(),
            spec.num_types().to_string(),
        ]);
    }
    let scale_note = if presets::full_scale_requested() {
        "full (paper) scale"
    } else {
        "bench scale for D/E (set KLOTSKI_FULL_SCALE=1 for paper scale)"
    };
    format!(
        "== Table 3: topology configurations ({scale_note}) ==\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_lists_all_presets() {
        let out = table3();
        for id in PresetId::ALL {
            assert!(out.contains(&id.to_string()), "missing {id}");
        }
    }

    #[test]
    fn fig13_alpha_zero_matches_default_cost() {
        let out = fig13();
        assert!(out.contains("alpha"));
        // First sweep point is alpha = 0.
        assert!(out.lines().any(|l| l.trim_start().starts_with('0')));
    }

    #[test]
    fn duration_model_orders_migration_types() {
        let hgrid = spec_for(PresetId::E, &MigrationOptions::default());
        let dmag = spec_for(PresetId::EDmag, &MigrationOptions::default());
        // HGRID swaps hundreds of switches; DMAG is mostly config pushes.
        assert!(duration_days(&hgrid, 4) > duration_days(&dmag, 5));
    }
}
