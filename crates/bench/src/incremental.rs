//! Incremental-vs-full satisfiability measurement: the same search run
//! twice — once with delta-aware incremental routing (the default) and once
//! forced to from-scratch evaluation — on presets C and E with both
//! planners. ESC caching is off so the comparison isolates routing work;
//! verdicts (and hence plans and costs) are bit-identical between the two
//! runs, only the satcheck wall time moves. The `report` binary's
//! `incremental` experiment renders a table and writes the raw numbers to
//! `BENCH_incremental.json`.

use crate::bench_timeout;
use crate::table::Table;
use klotski_core::migration::{MigrationOptions, MigrationSpec};
use klotski_core::planner::{AStarPlanner, DpPlanner, PlanStats, Planner, SearchBudget};
use klotski_core::EscMode;
use klotski_topology::presets::PresetId;
use serde::Serialize;

/// One (preset, planner) measurement in `BENCH_incremental.json`.
#[derive(Debug, Clone, Serialize)]
pub struct IncrementalRow {
    /// Preset id (C/E).
    pub preset: String,
    /// Planner label ("Klotski-A*" / "Klotski-DP").
    pub planner: String,
    /// Satisfiability queries issued (identical in both runs).
    pub sat_checks: u64,
    /// Satcheck wall time with from-scratch evaluation, milliseconds.
    pub full_satcheck_ms: f64,
    /// Satcheck wall time with incremental evaluation, milliseconds.
    pub incremental_satcheck_ms: f64,
    /// `full_satcheck_ms / incremental_satcheck_ms`.
    pub satcheck_speedup: f64,
    /// Total planning wall time, from-scratch, milliseconds.
    pub full_plan_ms: f64,
    /// Total planning wall time, incremental, milliseconds.
    pub incremental_plan_ms: f64,
    /// Fraction of destination evaluations replayed from the incremental
    /// routing cache.
    pub incremental_hit_rate: f64,
    /// Both runs converged on the same plan cost.
    pub costs_match: bool,
}

/// The JSON document written to `BENCH_incremental.json`.
#[derive(Debug, Clone, Serialize)]
pub struct IncrementalReport {
    pub rows: Vec<IncrementalRow>,
}

/// Runs one planner with ESC off, returning `(cost, stats)`.
fn run_esc_off(use_dp: bool, spec: &MigrationSpec) -> (f64, PlanStats) {
    let budget = SearchBudget {
        max_states: 50_000_000,
        time_limit: bench_timeout(),
        ..SearchBudget::default()
    };
    let outcome = if use_dp {
        DpPlanner {
            budget,
            esc: EscMode::Off,
            ..DpPlanner::default()
        }
        .plan(spec)
    } else {
        AStarPlanner {
            budget,
            esc: EscMode::Off,
            ..AStarPlanner::default()
        }
        .plan(spec)
    };
    let o = outcome.unwrap_or_else(|e| {
        panic!(
            "{} on {} failed: {e}",
            if use_dp { "dp" } else { "a*" },
            spec.name
        )
    });
    (o.cost, o.stats)
}

/// Runs the full-vs-incremental sweep and builds the JSON report.
pub fn measure(presets: &[PresetId]) -> IncrementalReport {
    let mut rows = Vec::new();
    for &id in presets {
        let incr_spec = crate::runner::spec_for(id, &MigrationOptions::default());
        let full_spec = crate::runner::spec_for(
            id,
            &MigrationOptions {
                incremental: false,
                ..MigrationOptions::default()
            },
        );
        for (use_dp, label) in [(false, "Klotski-A*"), (true, "Klotski-DP")] {
            let (full_cost, full) = run_esc_off(use_dp, &full_spec);
            let (incr_cost, incr) = run_esc_off(use_dp, &incr_spec);
            rows.push(IncrementalRow {
                preset: id.to_string(),
                planner: label.into(),
                sat_checks: incr.sat_checks,
                full_satcheck_ms: full.satcheck_time.as_secs_f64() * 1e3,
                incremental_satcheck_ms: incr.satcheck_time.as_secs_f64() * 1e3,
                satcheck_speedup: full.satcheck_time.as_secs_f64()
                    / incr.satcheck_time.as_secs_f64().max(1e-9),
                full_plan_ms: full.planning_time.as_secs_f64() * 1e3,
                incremental_plan_ms: incr.planning_time.as_secs_f64() * 1e3,
                incremental_hit_rate: incr.incremental_hit_rate(),
                costs_match: (full_cost - incr_cost).abs() < 1e-9,
            });
        }
    }
    IncrementalReport { rows }
}

/// The `incremental` experiment: renders the sweep as a table and writes
/// `BENCH_incremental.json` in the working directory.
pub fn incremental() -> String {
    let report = measure(&[PresetId::C, PresetId::E]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = "BENCH_incremental.json";
    let note = match std::fs::write(path, &json) {
        Ok(()) => format!("wrote {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let mut t = Table::new([
        "preset",
        "planner",
        "sat checks",
        "full satcheck",
        "incr satcheck",
        "speedup",
        "incr hit rate",
        "plan time full/incr",
    ]);
    for r in &report.rows {
        t.row([
            r.preset.clone(),
            r.planner.clone(),
            r.sat_checks.to_string(),
            format!("{:.0}ms", r.full_satcheck_ms),
            format!("{:.0}ms", r.incremental_satcheck_ms),
            format!("{:.2}x", r.satcheck_speedup),
            format!("{:.1}%", 100.0 * r.incremental_hit_rate),
            format!("{:.0}/{:.0}ms", r.full_plan_ms, r.incremental_plan_ms),
        ]);
    }
    format!(
        "== Incremental vs full satisfiability (ESC off) ==\n{}\n[{note}]",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_is_consistent_on_preset_a() {
        // Correctness of the plumbing on the smallest preset: both runs
        // must agree on cost and produce positive timings.
        let report = measure(&[PresetId::A]);
        assert_eq!(report.rows.len(), 2);
        for r in &report.rows {
            assert!(r.costs_match, "{}/{} diverged", r.preset, r.planner);
            assert!(r.sat_checks > 0);
            assert!(r.full_satcheck_ms >= 0.0 && r.incremental_satcheck_ms >= 0.0);
            assert!((0.0..=1.0).contains(&r.incremental_hit_rate));
        }
    }
}
