//! Fleet-scale zipf load generation: thousands of tenants re-planning
//! against a small set of NPD revisions is the production pattern RNG and
//! METTEOR describe for commercial DCN control planes, so request keys
//! repeat heavily. This experiment samples tenant documents under a
//! zipf(1.1) popularity law and measures the daemon three ways:
//!
//! * `cold` — cache and coalescing disabled: every request pays a full
//!   pipeline execution (the pre-ISSUE-10 worst case);
//! * `coalesced` — the default configuration plus `--state-dir`: the plan
//!   cache and in-flight coalescing absorb repeats;
//! * `warm_restart` — a fresh daemon on the same state directory: journal
//!   replay answers every known digest from cache with zero pipeline
//!   executions.
//!
//! Byte-identity is asserted across all arms (per-document FNV body
//! hashes must agree), and the `fleet` section is merged into
//! `BENCH_service.json` next to the `service` experiment's rows.
//!
//! Environment:
//! - `KLOTSKI_FLEET_DOCS` — distinct tenant documents (default 12);
//! - `KLOTSKI_FLEET_REQUESTS` — total requests per arm (default 72);
//! - `KLOTSKI_FLEET_CLIENTS` — concurrent client threads (default 8).

use crate::table::Table;
use klotski_npd::api::fnv1a;
use klotski_npd::convert::region_to_npd;
use klotski_service::{Service, ServiceConfig};
use klotski_topology::presets::{self, PresetId};
use serde::Serialize;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One arm's measurement in the `fleet` section of `BENCH_service.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FleetRow {
    /// `cold`, `coalesced`, or `warm_restart`.
    pub arm: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued.
    pub requests: usize,
    /// 200 responses.
    pub ok: usize,
    /// Successful requests per second, wall-clock (effective throughput).
    pub throughput_rps: f64,
    /// Fraction of 200s answered `X-Klotski-Cache: hit`.
    pub cache_hit_rate: f64,
    /// `followers / (leaders + followers)` from the daemon's metrics.
    pub coalesce_hit_rate: f64,
    /// Pipeline executions the arm cost the daemon (scraped at the end).
    pub pipeline_executions: u64,
    /// Every response body matched the cold arm's bytes for its document.
    pub byte_identical: bool,
}

/// The `fleet` section of `BENCH_service.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Distinct tenant documents.
    pub docs: usize,
    /// Zipf skew exponent.
    pub zipf_s: f64,
    pub rows: Vec<FleetRow>,
    /// `coalesced` throughput over `cold` throughput.
    pub coalesced_vs_cold: f64,
}

/// Deterministic splitmix64 stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A zipf(s)-distributed request sequence over `docs` document indices,
/// sampled by CDF inversion from a seeded splitmix64 stream.
fn zipf_sequence(docs: usize, s: f64, requests: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (1..=docs).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(docs);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut state = seed;
    (0..requests)
        .map(|_| {
            let u = splitmix64(&mut state) as f64 / (u64::MAX as f64 + 1.0);
            cdf.iter().position(|&c| u < c).unwrap_or(docs - 1)
        })
        .collect()
}

/// Distinct tenant documents: the preset-A NPD re-named per tenant, which
/// changes its content digest without changing its planning difficulty.
fn tenant_docs(docs: usize) -> Vec<Arc<String>> {
    let base = region_to_npd(&presets::config(PresetId::A));
    (0..docs)
        .map(|i| {
            let mut npd = base.clone();
            npd.name = format!("tenant-{i:04}");
            Arc::new(npd.to_json_pretty().expect("NPD serializes"))
        })
        .collect()
}

/// Minimal HTTP POST; returns (status, cache-hit?, body FNV hash).
fn post(addr: SocketAddr, body: &str) -> Option<(u16, bool, u64)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .ok()?;
    let msg = format!(
        "POST /v1/plan HTTP/1.1\r\nHost: fleet\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).ok()?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).ok()?;
    let head_end = reply.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&reply[..head_end]).ok()?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let cached = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("x-klotski-cache:") && l.contains("hit"));
    Some((status, cached, fnv1a(&reply[head_end + 4..])))
}

/// Minimal HTTP GET returning the response body.
fn get(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let msg = format!("GET {path} HTTP/1.1\r\nHost: fleet\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(msg.as_bytes()).ok()?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).ok()?;
    let reply = String::from_utf8(reply).ok()?;
    Some(reply.split_once("\r\n\r\n")?.1.to_string())
}

/// First value of an unlabeled metric family in Prometheus text.
fn scrape(text: &str, family: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(family)?.strip_prefix(' '))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(0, |v| v as u64)
}

/// Drives `sequence` against a running daemon with `clients` threads
/// (strided split, so the popular documents collide across clients) and
/// folds the arm's row from the responses plus a final metrics scrape.
fn drive_arm(
    name: &str,
    service: &Service,
    docs: &[Arc<String>],
    sequence: &[usize],
    clients: usize,
    reference: &mut HashMap<usize, u64>,
) -> FleetRow {
    let addr = service.local_addr();
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let work: Vec<(usize, Arc<String>)> = sequence
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .map(|(_, &doc)| (doc, Arc::clone(&docs[doc])))
                .collect();
            std::thread::spawn(move || {
                let mut results = Vec::with_capacity(work.len());
                for (doc, body) in work {
                    if let Some((status, cached, hash)) = post(addr, &body) {
                        results.push((doc, status, cached, hash));
                        if status == 503 {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
                results
            })
        })
        .collect();
    let results: Vec<(usize, u16, bool, u64)> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    let wall = start.elapsed();

    let metrics = get(addr, "/metrics").unwrap_or_default();
    let leaders = scrape(&metrics, "klotski_coalesce_leaders_total");
    let followers = scrape(&metrics, "klotski_coalesce_followers_total");
    let executions = scrape(&metrics, "klotski_pipeline_executions_total");

    let ok: Vec<_> = results.iter().filter(|(_, s, _, _)| *s == 200).collect();
    let hits = ok.iter().filter(|(_, _, cached, _)| *cached).count();
    let mut byte_identical = true;
    for (doc, _, _, hash) in &ok {
        match reference.get(doc) {
            Some(expected) => byte_identical &= expected == hash,
            None => {
                reference.insert(*doc, *hash);
            }
        }
    }
    FleetRow {
        arm: name.to_string(),
        clients,
        requests: sequence.len(),
        ok: ok.len(),
        throughput_rps: ok.len() as f64 / wall.as_secs_f64().max(1e-9),
        cache_hit_rate: if ok.is_empty() {
            0.0
        } else {
            hits as f64 / ok.len() as f64
        },
        coalesce_hit_rate: if leaders + followers == 0 {
            0.0
        } else {
            followers as f64 / (leaders + followers) as f64
        },
        pipeline_executions: executions,
        byte_identical,
    }
}

/// Runs the three-arm zipf workload, returning the report.
pub fn measure(docs: usize, requests: usize, clients: usize, state_dir: &PathBuf) -> FleetReport {
    let zipf_s = 1.1;
    let documents = tenant_docs(docs);
    let sequence = zipf_sequence(docs, zipf_s, requests, 0x5eed_f1ee7);
    let workers = klotski_parallel::default_lanes().clamp(2, 4);
    let base = ServiceConfig {
        workers,
        queue_depth: requests.max(16),
        ..ServiceConfig::default()
    };
    // The cold arm's bodies are the byte-identity reference for the rest.
    let mut reference = HashMap::new();
    let mut rows = Vec::new();

    let cold = Service::start(ServiceConfig {
        cache_capacity: 0,
        coalesce: false,
        ..base.clone()
    })
    .expect("bind cold service");
    rows.push(drive_arm(
        "cold",
        &cold,
        &documents,
        &sequence,
        clients,
        &mut reference,
    ));
    cold.shutdown();

    let _ = std::fs::remove_dir_all(state_dir);
    let coalesced = Service::start(ServiceConfig {
        state_dir: Some(state_dir.clone()),
        ..base.clone()
    })
    .expect("bind coalesced service");
    rows.push(drive_arm(
        "coalesced",
        &coalesced,
        &documents,
        &sequence,
        clients,
        &mut reference,
    ));
    // Graceful drain compacts and flushes the journal for the restart.
    coalesced.shutdown();

    let warm = Service::start(ServiceConfig {
        state_dir: Some(state_dir.clone()),
        ..base
    })
    .expect("bind warm service");
    rows.push(drive_arm(
        "warm_restart",
        &warm,
        &documents,
        &sequence,
        clients,
        &mut reference,
    ));
    warm.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);

    let coalesced_vs_cold = rows[1].throughput_rps / rows[0].throughput_rps.max(1e-9);
    FleetReport {
        docs,
        zipf_s,
        rows,
        coalesced_vs_cold,
    }
}

/// The `fleet` experiment: runs the zipf workload, renders the table, and
/// merges the `fleet` section into `BENCH_service.json`.
pub fn fleet() -> String {
    let docs = crate::env_usize("KLOTSKI_FLEET_DOCS", 12);
    let requests = crate::env_usize("KLOTSKI_FLEET_REQUESTS", 72);
    let clients = crate::env_usize("KLOTSKI_FLEET_CLIENTS", 8);
    let state_dir = std::env::temp_dir().join(format!("klotski-fleet-{}", std::process::id()));
    let report = measure(docs, requests, clients, &state_dir);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let note = crate::service::write_bench_section("fleet", &json);
    let mut t = Table::new([
        "arm",
        "clients",
        "requests",
        "ok",
        "rps",
        "cache hit",
        "coalesce hit",
        "pipeline execs",
        "byte-identical",
    ]);
    for r in &report.rows {
        t.row([
            r.arm.clone(),
            r.clients.to_string(),
            r.requests.to_string(),
            r.ok.to_string(),
            format!("{:.1}", r.throughput_rps),
            format!("{:.0}%", r.cache_hit_rate * 100.0),
            format!("{:.0}%", r.coalesce_hit_rate * 100.0),
            r.pipeline_executions.to_string(),
            r.byte_identical.to_string(),
        ]);
    }
    format!(
        "== Fleet zipf({}) workload: {} tenants, {} requests/arm ==\n{}\n\
         coalesced vs cold effective throughput: {:.2}x\n[{note}]",
        report.zipf_s,
        report.docs,
        report.rows[0].requests,
        t.render(),
        report.coalesced_vs_cold,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sequence_is_deterministic_and_skewed() {
        let a = zipf_sequence(16, 1.1, 400, 7);
        let b = zipf_sequence(16, 1.1, 400, 7);
        assert_eq!(a, b, "same seed, same sequence");
        assert!(a.iter().all(|&d| d < 16));
        // Rank 0 must dominate any tail rank under s=1.1.
        let head = a.iter().filter(|&&d| d == 0).count();
        let tail = a.iter().filter(|&&d| d == 15).count();
        assert!(head > tail, "zipf head {head} must beat tail {tail}");
    }

    #[test]
    fn tenant_docs_have_distinct_digests() {
        let docs = tenant_docs(3);
        let digests: Vec<u64> = docs
            .iter()
            .map(|d| klotski_npd::npd_digest(&klotski_npd::Npd::from_json(d).expect("valid NPD")))
            .collect();
        assert_ne!(digests[0], digests[1]);
        assert_ne!(digests[1], digests[2]);
    }

    #[test]
    fn scrape_reads_unlabeled_families() {
        let text = "# HELP x y\nklotski_coalesce_leaders_total 7\nother 9\n";
        assert_eq!(scrape(text, "klotski_coalesce_leaders_total"), 7);
        assert_eq!(scrape(text, "missing_family"), 0);
    }

    #[test]
    fn tiny_fleet_measures_cleanly() {
        let dir = std::env::temp_dir().join(format!("klotski-fleet-test-{}", std::process::id()));
        let report = measure(2, 6, 2, &dir);
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.ok > 0, "arm {} got no 200s", row.arm);
            assert!(row.byte_identical, "arm {} diverged", row.arm);
        }
        // The restarted daemon must plan nothing: every digest replays.
        let warm = &report.rows[2];
        assert_eq!(warm.pipeline_executions, 0, "warm arm must not plan");
        assert!(warm.cache_hit_rate > 0.99, "warm arm must hit cache");
    }
}
