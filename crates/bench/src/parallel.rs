//! Parallel-satcheck throughput measurement: sequential (1 thread) vs the
//! machine's available parallelism, per preset, on uncached full
//! evaluations. The `report` binary's `parallel` experiment renders a
//! table and writes the raw numbers to `BENCH_parallel.json`.

use crate::table::Table;
use klotski_core::migration::{MigrationOptions, MigrationSpec};
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::{ActionTypeId, CompactState};
use klotski_parallel::default_lanes;
use klotski_topology::presets::PresetId;
use klotski_topology::NetState;
use serde::Serialize;
use std::time::{Duration, Instant};

/// One preset's measurement in `BENCH_parallel.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelRow {
    /// Preset id (B/C/E).
    pub preset: String,
    /// States per batch (the planner-expansion shape).
    pub batch: usize,
    /// Lanes used by the parallel run.
    pub threads: usize,
    /// Full evaluations per second, single-threaded.
    pub seq_checks_per_sec: f64,
    /// Full evaluations per second at `threads` lanes.
    pub par_checks_per_sec: f64,
    /// `par / seq`.
    pub speedup: f64,
}

/// The JSON document written to `BENCH_parallel.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelReport {
    /// `available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    pub rows: Vec<ParallelRow>,
}

/// Distinct progress states spread along a deterministic walk through the
/// target box — the batch shape planner expansions produce.
pub fn sample_batch(spec: &MigrationSpec, n: usize) -> Vec<(CompactState, NetState)> {
    let target = &spec.target_counts;
    let num_types = spec.num_types();
    let mut out = Vec::with_capacity(n);
    let mut v = CompactState::origin(num_types);
    let mut seen = std::collections::HashSet::new();
    let total = target.total().max(1);
    let mut step = 0usize;
    while out.len() < n && v.total() < total {
        // Round-robin over types, skipping exhausted ones.
        let mut advanced = false;
        for k in 0..num_types {
            let a = ActionTypeId(((step + k) % num_types) as u8);
            if v.count(a) < target.count(a) {
                v = v.advanced(a);
                advanced = true;
                break;
            }
        }
        step += 1;
        if !advanced {
            break;
        }
        if seen.insert(v.counts().to_vec()) {
            let state = spec.state_for(&v);
            out.push((v.clone(), state));
        }
    }
    out
}

/// Measures `check_batch` throughput (full evaluations per second, cache
/// off) for the sequential and `threads`-lane checkers together:
/// interleaved rounds with per-arm timers, so slow machine drift
/// (frequency scaling, cache warm-up) lands on both arms evenly instead
/// of on whichever is measured last. Returns `(seq, par)` rates.
fn throughput_pair(
    spec: &MigrationSpec,
    states: &[(CompactState, NetState)],
    threads: usize,
    min_time: Duration,
) -> (f64, f64) {
    let items: Vec<(&CompactState, &NetState, Option<ActionTypeId>)> =
        states.iter().map(|(v, s)| (v, s, None)).collect();
    let mut arms = [
        SatChecker::with_threads(spec, EscMode::Off, 1),
        SatChecker::with_threads(spec, EscMode::Off, threads),
    ];
    for checker in arms.iter_mut() {
        checker.check_batch(spec, &items); // warm-up: allocate lane scratch
    }
    let mut samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let start = Instant::now();
    let mut round = 0usize;
    while start.elapsed() < min_time {
        for k in 0..arms.len() {
            let i = (round + k) % arms.len();
            let t0 = Instant::now();
            arms[i].check_batch(spec, &items);
            samples[i].push(items.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9));
        }
        round += 1;
    }
    // Median round rate per arm: robust to the occasional round inflated
    // by a timer interrupt or scheduler preemption landing in one arm.
    (median(&mut samples[0]), median(&mut samples[1]))
}

/// Median of a sample set (mean of the middle two for even counts).
pub(crate) fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Runs the seq-vs-parallel sweep and builds the JSON report.
pub fn measure(min_time: Duration) -> ParallelReport {
    let threads = default_lanes();
    let batch = 16;
    let mut rows = Vec::new();
    for id in [PresetId::B, PresetId::C, PresetId::E] {
        // From-scratch evaluation: this experiment measures parallel
        // routing throughput; repeated batches would otherwise degenerate
        // into incremental replays (measured by the `incremental`
        // experiment instead).
        let spec = crate::runner::spec_for(
            id,
            &MigrationOptions {
                incremental: false,
                ..MigrationOptions::default()
            },
        );
        let states = sample_batch(&spec, batch);
        // With one available lane the "parallel" checker *is* the
        // sequential checker — same lane count, same code path — so one
        // measurement serves both arms; a second run would only report a
        // noise draw as a phantom (de)speedup.
        let (seq, par) = if threads == 1 {
            let (seq, _) = throughput_pair(&spec, &states, threads, min_time);
            (seq, seq)
        } else {
            throughput_pair(&spec, &states, threads, min_time)
        };
        rows.push(ParallelRow {
            preset: id.to_string(),
            batch: states.len(),
            threads,
            seq_checks_per_sec: seq,
            par_checks_per_sec: par,
            speedup: par / seq,
        });
    }
    ParallelReport {
        available_parallelism: threads,
        rows,
    }
}

/// The `parallel` experiment: renders the sweep as a table and writes
/// `BENCH_parallel.json` next to the working directory.
pub fn parallel() -> String {
    let report = measure(Duration::from_secs(4));
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = "BENCH_parallel.json";
    let note = match std::fs::write(path, &json) {
        Ok(()) => format!("wrote {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let mut t = Table::new([
        "preset",
        "batch",
        "threads",
        "seq checks/s",
        "par checks/s",
        "speedup",
    ]);
    for r in &report.rows {
        t.row([
            r.preset.clone(),
            r.batch.to_string(),
            r.threads.to_string(),
            format!("{:.1}", r.seq_checks_per_sec),
            format!("{:.1}", r.par_checks_per_sec),
            format!("{:.2}x", r.speedup),
        ]);
    }
    format!(
        "== Parallel satcheck throughput ({} lanes available) ==\n{}\n[{note}]",
        report.available_parallelism,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_batch_yields_distinct_in_box_states() {
        let spec = crate::runner::spec_for(PresetId::A, &MigrationOptions::default());
        let states = sample_batch(&spec, 8);
        assert!(!states.is_empty());
        let mut seen = std::collections::HashSet::new();
        for (v, _) in &states {
            assert!(v.within(&spec.target_counts));
            assert!(seen.insert(v.counts().to_vec()), "duplicate {v}");
        }
    }

    #[test]
    fn measure_produces_finite_rates() {
        // Millisecond budget: correctness of the plumbing, not the numbers.
        let report = measure(Duration::from_millis(10));
        assert_eq!(report.rows.len(), 3);
        for r in &report.rows {
            assert!(r.seq_checks_per_sec.is_finite() && r.seq_checks_per_sec > 0.0);
            assert!(r.par_checks_per_sec.is_finite() && r.par_checks_per_sec > 0.0);
            assert!(r.speedup.is_finite() && r.speedup > 0.0);
        }
    }
}
