//! # klotski-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6). The `report` binary prints the same rows/series the
//! paper reports; the Criterion benches under `benches/` measure the same
//! scenarios for statistically solid timing.
//!
//! Absolute numbers differ from the paper — the substrate here is a
//! synthetic simulator, not Meta's production fleet — but the *shape* of
//! every result (who wins, by what ballpark factor, where feasibility
//! crosses appear) is the reproduction target. `EXPERIMENTS.md` records
//! paper-vs-measured for each experiment.
//!
//! Scale: topologies A–C build at paper scale; D and E shrink their fabric
//! unless `KLOTSKI_FULL_SCALE=1` (see `klotski_topology::presets`). The
//! planner-visible problem (blocks, action types, feasible region) is
//! identical at both scales.

pub mod experiments;
pub mod fleet;
pub mod full_scale;
pub mod incremental;
pub mod longhorizon;
pub mod parallel;
pub mod robust;
pub mod runner;
pub mod scenarios;
pub mod service;
pub mod table;
pub mod telemetry;

pub use runner::{run_planner, spec_for, PlannerKind, RunResult};

/// Default per-planner wall-clock limit for report runs. The paper caps
/// planners at 24 h; the report uses a laptop-friendly cap, overridable via
/// `KLOTSKI_BENCH_TIMEOUT_SECS`.
pub fn bench_timeout() -> std::time::Duration {
    let secs = std::env::var("KLOTSKI_BENCH_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(120);
    std::time::Duration::from_secs(secs)
}

/// A `usize` environment knob with a default (the experiments' shared
/// idiom for CI-shrinkable workloads).
pub(crate) fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
}
