//! Long-horizon controller endurance: overlapping event storms on
//! preset C, stretched over hundreds of aggregate steps by the Figure 11
//! block-scale override. Each *wave* is a scripted timeline that layers
//! periodic demand surges on top of organic growth, a mid-run link
//! failure, and an external drain, calibrated against a tightened θ so
//! the controller safe-pauses and replans under pressure instead of
//! cruising. Every wave runs at worker-pool widths 1 and 4; the report
//! asserts the run fingerprints are bit-identical across the two, and
//! pulls the replan-latency tail (p50/p99/p999) for each width from the
//! process-global `klotski_controller_replan_seconds` log-linear
//! histogram via a snapshot delta, so the rows cover exactly this
//! experiment's own samples. The `report` binary's `long-horizon`
//! experiment renders both tables and writes `BENCH_longhorizon.json`.

use crate::table::Table;
use klotski_controller::{run_scenario, ReplanPolicy, Scenario, ScenarioEvent};
use klotski_telemetry::registry;
use serde::Serialize;

/// The log-linear family the controller records every replan latency to.
const REPLAN_FAMILY: &str = "klotski_controller_replan_seconds";

/// Worker-pool widths every wave runs at; fingerprints must match
/// pairwise across them.
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// One wave execution at one worker-pool width in
/// `BENCH_longhorizon.json`.
#[derive(Debug, Clone, Serialize)]
pub struct WaveRow {
    /// Wave name.
    pub wave: String,
    /// Worker-pool width the controller ran with.
    pub threads: usize,
    /// Executed batches (canary batches count).
    pub steps: usize,
    /// Shadow audits run.
    pub audits: u64,
    /// Safe-pauses triggered by a failed audit or lookahead.
    pub pauses: usize,
    /// Replanning attempts.
    pub replans: usize,
    /// `completed` | `rolled_back` | `paused`.
    pub outcome: String,
    /// Deterministic run fingerprint (hex), stable across thread counts.
    pub fingerprint: String,
}

/// Replan-latency tail for one worker-pool width, from the registry
/// snapshot delta over that width's whole batch of waves.
#[derive(Debug, Clone, Serialize)]
pub struct TailRow {
    /// Worker-pool width.
    pub threads: usize,
    /// Replan latencies sampled in the batch.
    pub count: u64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds.
    pub p999_ms: f64,
}

/// The JSON document written to `BENCH_longhorizon.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LongHorizonReport {
    /// Topology preset every wave migrates.
    pub preset: String,
    /// Block-scale override stretching the run (Figure 11 semantics).
    pub block_scale: f64,
    /// Waves executed per worker-pool width.
    pub waves: usize,
    /// Steps executed across all waves and widths.
    pub total_steps: usize,
    /// Whether every wave's fingerprint matched across widths.
    pub deterministic: bool,
    /// Every wave × width execution.
    pub rows: Vec<WaveRow>,
    /// Replan-latency tail per width.
    pub replan_tail: Vec<TailRow>,
}

/// The storm timelines. Wave 0 is the calibrated base: θ tightened to
/// 0.68, 1% organic growth per step, +8% all-class surges every four
/// steps through the first half of the run, a transient link failure and
/// an external drain overlapping them — the controller absorbs the
/// storms with safe-pauses and incremental replans and still completes
/// all 36 steps (18 default blocks split in two). Later waves perturb
/// the seed, growth, and surge amplitude; a wave that rolls back under a
/// harsher draw is a valid outcome and stays in the report.
fn storm_waves(n: usize) -> Vec<Scenario> {
    (0..n)
        .map(|i| {
            // Alternate the two calibrated pressure profiles; odd waves
            // trade growth for amplitude so the surge peaks differ.
            let (growth, factor) = if i % 2 == 0 {
                (0.010, 1.08)
            } else {
                (0.008, 1.10)
            };
            let mut events: Vec<ScenarioEvent> = (2..18)
                .step_by(4)
                .map(|at| ScenarioEvent::surge(at, at + 2, factor, None))
                .collect();
            events.push(ScenarioEvent::link_failure(7, Some(14), None));
            events.push(ScenarioEvent::external_op(5, Some(12), None));
            Scenario {
                name: format!("storm-{i}"),
                preset: "c".to_string(),
                seed: 41 + i as u64,
                theta: Some(0.68),
                planner: "astar".to_string(),
                alpha: 0.0,
                canary_blocks: 1,
                demand_growth_per_step: growth,
                threads: None,
                events,
                replan: ReplanPolicy {
                    max_replans: 64,
                    max_states: 2_000_000,
                    time_limit_ms: 30_000,
                },
                progress_every: None,
                block_scale: Some(2.0),
                ensemble: None,
            }
        })
        .collect()
}

/// Runs `n` waves at every worker-pool width and builds the JSON report.
pub fn measure(n: usize) -> LongHorizonReport {
    let scenarios = storm_waves(n);
    let mut rows: Vec<WaveRow> = Vec::new();
    let mut replan_tail = Vec::new();
    for &threads in &THREAD_COUNTS {
        let baseline = registry().snapshot();
        for scenario in &scenarios {
            let mut scenario = scenario.clone();
            scenario.threads = Some(threads);
            let report = run_scenario(&scenario, None)
                .unwrap_or_else(|e| panic!("wave {} failed to start: {e}", scenario.name));
            rows.push(WaveRow {
                wave: report.name.clone(),
                threads,
                steps: report.steps.len(),
                audits: report.audit_stats.live_audits,
                pauses: report.pauses(),
                replans: report.replans.len(),
                outcome: report.outcome_label().to_string(),
                fingerprint: format!("{:016x}", report.fingerprint()),
            });
        }
        let tail = registry()
            .loglinear_since(REPLAN_FAMILY, &baseline)
            .expect("the controller records replan latencies");
        replan_tail.push(TailRow {
            threads,
            count: tail.count(),
            mean_ms: tail.mean_seconds() * 1e3,
            p50_ms: tail.quantile(0.5) * 1e3,
            p99_ms: tail.quantile(0.99) * 1e3,
            p999_ms: tail.quantile(0.999) * 1e3,
        });
    }
    let deterministic = scenarios.iter().all(|s| {
        let mut prints = rows
            .iter()
            .filter(|r| r.wave == s.name)
            .map(|r| r.fingerprint.as_str());
        match prints.next() {
            Some(first) => prints.all(|p| p == first),
            None => false,
        }
    });
    LongHorizonReport {
        preset: "c".to_string(),
        block_scale: 2.0,
        waves: n,
        total_steps: rows.iter().map(|r| r.steps).sum(),
        deterministic,
        rows,
        replan_tail,
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `long-horizon` experiment: renders the wave and tail tables and
/// writes `BENCH_longhorizon.json` in the working directory. Wave count
/// defaults to 6 per width (hundreds of aggregate steps);
/// `KLOTSKI_LONGHORIZON_WAVES` overrides it for smoke runs.
pub fn longhorizon() -> String {
    let waves = env_usize("KLOTSKI_LONGHORIZON_WAVES", 6);
    let report = measure(waves);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = "BENCH_longhorizon.json";
    let note = match std::fs::write(path, &json) {
        Ok(()) => format!("wrote {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let mut t = Table::new([
        "wave",
        "threads",
        "steps",
        "audits",
        "pauses",
        "replans",
        "outcome",
        "fingerprint",
    ]);
    for r in &report.rows {
        t.row([
            r.wave.clone(),
            r.threads.to_string(),
            r.steps.to_string(),
            r.audits.to_string(),
            r.pauses.to_string(),
            r.replans.to_string(),
            r.outcome.clone(),
            r.fingerprint.clone(),
        ]);
    }
    let mut tail = Table::new(["threads", "replans", "mean", "p50", "p99", "p999"]);
    for r in &report.replan_tail {
        tail.row([
            r.threads.to_string(),
            r.count.to_string(),
            format!("{:.1}ms", r.mean_ms),
            format!("{:.1}ms", r.p50_ms),
            format!("{:.1}ms", r.p99_ms),
            format!("{:.1}ms", r.p999_ms),
        ]);
    }
    format!(
        "== Long-horizon storms (preset C, block_scale 2, {} waves x widths {:?}) ==\n\
         {}\ntotal steps: {}   fingerprints deterministic across widths: {}\n\n\
         replan-latency tail per width:\n{}\n[{note}]",
        report.waves,
        THREAD_COUNTS,
        t.render(),
        report.total_steps,
        report.deterministic,
        tail.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_wave_is_deterministic_across_widths() {
        // One wave per width keeps the debug-build test affordable; the
        // base wave alone exercises pauses, replans, and completion.
        let report = measure(1);
        assert_eq!(report.rows.len(), THREAD_COUNTS.len());
        assert!(report.deterministic, "fingerprints diverged across widths");
        for row in &report.rows {
            assert_eq!(
                row.outcome, "completed",
                "wave {} width {}",
                row.wave, row.threads
            );
            assert!(row.pauses > 0, "the storm should force a safe-pause");
            assert!(row.replans > 0, "the storm should force a replan");
            assert_eq!(row.audits as usize, row.steps, "one shadow audit per step");
            assert!(
                row.steps >= 30,
                "block_scale 2 stretches preset C past 30 steps"
            );
        }
        // The tail deltas cover at least this experiment's own samples
        // (other tests in the binary may add to the process-global
        // histogram, never subtract).
        for (tail, &threads) in report.replan_tail.iter().zip(THREAD_COUNTS.iter()) {
            let own: usize = report
                .rows
                .iter()
                .filter(|r| r.threads == threads)
                .map(|r| r.replans)
                .sum();
            assert!(own > 0);
            assert!(tail.count >= own as u64, "width {threads}");
            assert!(tail.p50_ms > 0.0 && tail.p99_ms >= tail.p50_ms);
            assert!(tail.p999_ms >= tail.p99_ms);
        }
    }
}
