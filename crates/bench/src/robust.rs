//! Robust-satisfiability measurement: the same A\* search planned against
//! traffic ensembles of growing size K on presets A and C, plus a
//! single-matrix control arm. The incremental router computes routing
//! structure once per state and replays only the load sweep for each extra
//! matrix, so ensemble check time should grow sublinearly in K; the K=1
//! arm must match the control arm bit-for-bit (same plan, same cost) with
//! negligible overhead. Every arm runs at thread counts 1 and 4 and the
//! row records whether the plan fingerprint survived the change. The
//! `report` binary's `robust` experiment renders a table and writes the
//! raw numbers to `BENCH_robust.json`.

use crate::bench_timeout;
use crate::table::Table;
use klotski_core::migration::MigrationOptions;
use klotski_core::plan::MigrationPlan;
use klotski_core::planner::{AStarPlanner, PlanStats, Planner, SearchBudget};
use klotski_core::{EnsembleSpec, EscMode};
use klotski_topology::presets::PresetId;
use serde::Serialize;
use std::time::Instant;

/// Seed of every ensemble arm; fixed so reruns replay byte-for-byte.
pub const ENSEMBLE_SEED: u64 = 61;

/// Ensemble sizes swept per preset. 0 denotes the single-matrix control
/// arm (no ensemble option at all, not a K=1 ensemble).
pub const SWEEP: [usize; 5] = [0, 1, 2, 4, 8];

/// One (preset, K) measurement in `BENCH_robust.json`.
#[derive(Debug, Clone, Serialize)]
pub struct RobustRow {
    /// Preset id (A/C).
    pub preset: String,
    /// Ensemble size K; 0 = single-matrix control arm.
    pub k: usize,
    /// Plan cost (ensemble constraints can raise it above the control).
    pub cost: f64,
    /// Satisfiability queries issued by the search.
    pub sat_checks: u64,
    /// Per-matrix ensemble check executions (0 for K ≤ 1).
    pub ensemble_matrix_checks: u64,
    /// Checks that short-circuited the rest of their ensemble.
    pub ensemble_short_circuits: u64,
    /// Satcheck wall time, milliseconds (threads=1 run).
    pub satcheck_ms: f64,
    /// Total planning wall time, milliseconds (threads=1 run).
    pub plan_ms: f64,
    /// `satcheck_ms / control-arm satcheck_ms` on the same preset: the
    /// sublinearity story (K=8 should cost far less than 8×).
    pub satcheck_cost_ratio: f64,
    /// FNV-1a over the serialized plan of the threads=1 run.
    pub plan_fingerprint: String,
    /// Plan fingerprint and bit-exact cost survived threads 1 → 4.
    pub fingerprint_stable_across_threads: bool,
}

/// The JSON document written to `BENCH_robust.json`.
#[derive(Debug, Clone, Serialize)]
pub struct RobustReport {
    /// Seed shared by every ensemble arm.
    pub seed: u64,
    pub rows: Vec<RobustRow>,
}

/// FNV-1a over the plan's canonical JSON form.
fn plan_fingerprint(plan: &MigrationPlan) -> String {
    let json = serde_json::to_string(plan).expect("plan serializes");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// One A\* run (ESC off, so satcheck time isolates routing work).
struct Arm {
    cost: f64,
    stats: PlanStats,
    plan_ms: f64,
    fingerprint: String,
}

fn run_arm(id: PresetId, ensemble: Option<EnsembleSpec>, threads: usize) -> Arm {
    let opts = MigrationOptions {
        ensemble,
        threads,
        ..MigrationOptions::default()
    };
    let spec = crate::runner::spec_for(id, &opts);
    let budget = SearchBudget {
        max_states: 50_000_000,
        time_limit: bench_timeout(),
        ..SearchBudget::default()
    };
    let start = Instant::now();
    let out = AStarPlanner {
        budget,
        esc: EscMode::Off,
        ..AStarPlanner::default()
    }
    .plan(&spec)
    .unwrap_or_else(|e| panic!("a* on {} failed: {e}", spec.name));
    Arm {
        cost: out.cost,
        stats: out.stats,
        plan_ms: start.elapsed().as_secs_f64() * 1e3,
        fingerprint: plan_fingerprint(&out.plan),
    }
}

/// Runs the K sweep and builds the JSON report.
pub fn measure(presets: &[PresetId]) -> RobustReport {
    let mut rows = Vec::new();
    for &id in presets {
        let mut control_satcheck_ms = None;
        for k in SWEEP {
            let ensemble = (k > 0).then(|| EnsembleSpec::with_k(k, ENSEMBLE_SEED));
            let one = run_arm(id, ensemble.clone(), 1);
            let four = run_arm(id, ensemble, 4);
            let satcheck_ms = one.stats.satcheck_time.as_secs_f64() * 1e3;
            let control = *control_satcheck_ms.get_or_insert(satcheck_ms);
            rows.push(RobustRow {
                preset: id.to_string(),
                k,
                cost: one.cost,
                sat_checks: one.stats.sat_checks,
                ensemble_matrix_checks: one.stats.ensemble_matrix_checks,
                ensemble_short_circuits: one.stats.ensemble_short_circuits,
                satcheck_ms,
                plan_ms: one.plan_ms,
                satcheck_cost_ratio: satcheck_ms / control.max(1e-9),
                plan_fingerprint: one.fingerprint.clone(),
                fingerprint_stable_across_threads: one.fingerprint == four.fingerprint
                    && one.cost.to_bits() == four.cost.to_bits(),
            });
        }
    }
    RobustReport {
        seed: ENSEMBLE_SEED,
        rows,
    }
}

/// The `robust` experiment: renders the sweep as a table and writes
/// `BENCH_robust.json` in the working directory.
pub fn robust() -> String {
    let report = measure(&[PresetId::A, PresetId::C]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = "BENCH_robust.json";
    let note = match std::fs::write(path, &json) {
        Ok(()) => format!("wrote {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let mut t = Table::new([
        "preset",
        "K",
        "cost",
        "sat checks",
        "matrix checks",
        "kills",
        "satcheck",
        "vs control",
        "plan time",
        "threads 1==4",
    ]);
    for r in &report.rows {
        t.row([
            r.preset.clone(),
            if r.k == 0 {
                "–".into()
            } else {
                r.k.to_string()
            },
            format!("{:.1}", r.cost),
            r.sat_checks.to_string(),
            r.ensemble_matrix_checks.to_string(),
            r.ensemble_short_circuits.to_string(),
            format!("{:.0}ms", r.satcheck_ms),
            format!("{:.2}x", r.satcheck_cost_ratio),
            format!("{:.0}ms", r.plan_ms),
            if r.fingerprint_stable_across_threads {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    format!(
        "== Robust satisfiability over traffic ensembles (seed {}, ESC off) ==\n{}\n[{note}]",
        report.seed,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_is_consistent_on_preset_a() {
        let report = measure(&[PresetId::A]);
        assert_eq!(report.rows.len(), SWEEP.len());
        let control = &report.rows[0];
        let k1 = &report.rows[1];
        // A K=1 ensemble is the base matrix alone: same plan, same cost as
        // the no-ensemble control arm, and no ensemble accounting at all.
        assert_eq!(control.plan_fingerprint, k1.plan_fingerprint);
        assert_eq!(control.cost.to_bits(), k1.cost.to_bits());
        assert_eq!(k1.ensemble_matrix_checks, 0);
        for r in &report.rows {
            assert!(
                r.fingerprint_stable_across_threads,
                "{} K={} diverged across thread counts",
                r.preset, r.k
            );
            assert!(r.sat_checks > 0);
            if r.k > 1 {
                assert!(
                    r.ensemble_matrix_checks > 0,
                    "K={} ran no ensemble checks",
                    r.k
                );
            }
        }
        // More matrices mean more per-matrix work.
        let checks = |k: usize| {
            report
                .rows
                .iter()
                .find(|r| r.k == k)
                .expect("swept")
                .ensemble_matrix_checks
        };
        assert!(checks(8) > checks(2));
    }
}
