//! Telemetry overhead measurement: the same A\* search with tracing off
//! and with a full in-memory trace, best-of-N each. The `report` binary's
//! `telemetry` experiment renders the comparison and writes
//! `BENCH_telemetry.json`; the acceptance bar is < 3% overhead on preset C.

use crate::table::Table;
use klotski_core::migration::MigrationOptions;
use klotski_core::planner::{AStarPlanner, Planner};
use klotski_telemetry::{Record, RingSink};
use klotski_topology::presets::PresetId;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The JSON document written to `BENCH_telemetry.json`.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryReport {
    /// Preset the search ran on.
    pub preset: String,
    /// Runs per arm (best-of).
    pub runs: usize,
    /// Best wall-clock with no sink installed, milliseconds.
    pub plain_ms: f64,
    /// Best wall-clock with a ring-buffer trace sink installed, ms.
    pub traced_ms: f64,
    /// `(traced - plain) / plain`, percent.
    pub overhead_pct: f64,
    /// Trace lines captured by the traced arm's final run.
    pub trace_lines: usize,
    /// Spans among those lines.
    pub trace_spans: usize,
    /// Events among those lines.
    pub trace_events: usize,
}

/// Runs the two arms interleaved (plain, traced, plain, traced, …) so
/// machine drift hits both equally, and validates the captured trace.
pub fn measure(preset: PresetId, runs: usize) -> TelemetryReport {
    let spec = crate::runner::spec_for(preset, &MigrationOptions::default());
    let planner = AStarPlanner::default();
    // Park whatever sink the caller had; the plain arm must run dark.
    let saved = klotski_telemetry::swap(None);

    let mut plain_ms = f64::INFINITY;
    let mut traced_ms = f64::INFINITY;
    let mut summary = klotski_telemetry::TraceSummary::default();
    let mut trace_lines = 0usize;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        planner.plan(&spec).expect("preset plans");
        plain_ms = plain_ms.min(t0.elapsed().as_secs_f64() * 1e3);

        let ring = Arc::new(RingSink::new(1 << 20));
        klotski_telemetry::swap(Some(ring.clone()));
        let t0 = Instant::now();
        let root_id = {
            let root = klotski_telemetry::span!("bench.telemetry.run");
            planner.plan(&spec).expect("preset plans");
            root.id()
        };
        traced_ms = traced_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        klotski_telemetry::swap(None);

        let lines = subtree_lines(&ring.lines(), root_id);
        trace_lines = lines.len();
        let text = lines.join("\n");
        summary = klotski_telemetry::validate_trace(&text).expect("trace validates");
    }
    klotski_telemetry::swap(saved);

    TelemetryReport {
        preset: preset.to_string(),
        runs: runs.max(1),
        plain_ms,
        traced_ms,
        overhead_pct: (traced_ms - plain_ms) / plain_ms * 100.0,
        trace_lines,
        trace_spans: summary.spans,
        trace_events: summary.events,
    }
}

/// Keeps only the lines in the span subtree rooted at `root_id`. The trace
/// sink is process-global, so anything else planning in this process while
/// the ring is installed (e.g. a concurrently running test) leaks its own
/// spans into the capture — and a foreign span that closes after the ring
/// is swapped out leaves a dangling parent id that would fail validation.
/// With `root_id == 0` (tracing compiled out) lines pass through as-is.
fn subtree_lines(lines: &[String], root_id: u64) -> Vec<String> {
    if root_id == 0 {
        return lines.to_vec();
    }
    let records: Vec<Option<Record>> = lines
        .iter()
        .map(|l| klotski_telemetry::parse_line(l).ok())
        .collect();
    let mut parent_of = HashMap::new();
    for record in records.iter().flatten() {
        if let Record::Span { id, parent, .. } = record {
            parent_of.insert(*id, *parent);
        }
    }
    let in_subtree = |mut id: u64| {
        // Bounded walk: a corrupt parent chain must not loop forever.
        for _ in 0..=parent_of.len() {
            if id == root_id {
                return true;
            }
            match parent_of.get(&id) {
                Some(&parent) => id = parent,
                None => return false,
            }
        }
        false
    };
    lines
        .iter()
        .zip(&records)
        .filter(|(_, record)| match record {
            Some(Record::Span { id, .. }) => in_subtree(*id),
            Some(Record::Event { span, .. }) => in_subtree(*span),
            None => false,
        })
        .map(|(line, _)| line.clone())
        .collect()
}

/// The `telemetry` experiment: overhead on preset C, written to
/// `BENCH_telemetry.json`.
pub fn telemetry() -> String {
    let report = measure(PresetId::C, 3);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = "BENCH_telemetry.json";
    let note = match std::fs::write(path, &json) {
        Ok(()) => format!("wrote {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let mut t = Table::new([
        "preset",
        "runs",
        "plain ms",
        "traced ms",
        "overhead",
        "trace lines",
    ]);
    t.row([
        report.preset.clone(),
        report.runs.to_string(),
        format!("{:.2}", report.plain_ms),
        format!("{:.2}", report.traced_ms),
        format!("{:+.2}%", report.overhead_pct),
        report.trace_lines.to_string(),
    ]);
    format!(
        "== Telemetry overhead (A* search, trace on vs off) ==\n{}\n[{note}]",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtree_filter_drops_foreign_spans_and_events() {
        let ours_child = r#"{"type":"span","name":"a","id":2,"parent":1,"thread":"t","start_us":0,"dur_us":1,"fields":{}}"#;
        let ours_event = r#"{"type":"event","name":"tick","span":2,"ts_us":1,"fields":{}}"#;
        // A foreign span whose parent (7) never closed before the ring was
        // swapped out — unfiltered, validation fails on the dangling id.
        let foreign = r#"{"type":"span","name":"f","id":9,"parent":7,"thread":"t2","start_us":0,"dur_us":1,"fields":{}}"#;
        let foreign_event = r#"{"type":"event","name":"e","span":9,"ts_us":1,"fields":{}}"#;
        let ours_root = r#"{"type":"span","name":"r","id":1,"parent":0,"thread":"t","start_us":0,"dur_us":2,"fields":{}}"#;
        let lines: Vec<String> = [ours_child, ours_event, foreign, foreign_event, ours_root]
            .iter()
            .map(|s| s.to_string())
            .collect();

        assert!(klotski_telemetry::validate_trace(&lines.join("\n")).is_err());
        let kept = subtree_lines(&lines, 1);
        assert_eq!(kept, [ours_child, ours_event, ours_root].map(String::from));
        let summary = klotski_telemetry::validate_trace(&kept.join("\n")).unwrap();
        assert_eq!((summary.spans, summary.events), (2, 1));
        // Tracing compiled out: no root span, nothing to filter against.
        assert_eq!(subtree_lines(&lines, 0), lines);
    }

    #[test]
    fn measure_captures_a_valid_trace_and_finite_overhead() {
        let report = measure(PresetId::A, 1);
        assert!(report.plain_ms.is_finite() && report.plain_ms > 0.0);
        assert!(report.traced_ms.is_finite() && report.traced_ms > 0.0);
        assert!(report.overhead_pct.is_finite());
        // The traced arm must have captured at least the astar.plan span.
        assert!(report.trace_spans >= 1, "{report:?}");
        assert_eq!(report.trace_lines, report.trace_spans + report.trace_events);
    }
}
