//! Telemetry overhead measurement: the same A\* search with tracing off
//! and with a full in-memory trace, best-of-N each. The `report` binary's
//! `telemetry` experiment renders the comparison and writes
//! `BENCH_telemetry.json`; the acceptance bar is < 3% overhead on preset C.

use crate::table::Table;
use klotski_core::migration::MigrationOptions;
use klotski_core::planner::{AStarPlanner, Planner};
use klotski_telemetry::RingSink;
use klotski_topology::presets::PresetId;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// The JSON document written to `BENCH_telemetry.json`.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryReport {
    /// Preset the search ran on.
    pub preset: String,
    /// Runs per arm (best-of).
    pub runs: usize,
    /// Best wall-clock with no sink installed, milliseconds.
    pub plain_ms: f64,
    /// Best wall-clock with a ring-buffer trace sink installed, ms.
    pub traced_ms: f64,
    /// `(traced - plain) / plain`, percent.
    pub overhead_pct: f64,
    /// Trace lines captured by the traced arm's final run.
    pub trace_lines: usize,
    /// Spans among those lines.
    pub trace_spans: usize,
    /// Events among those lines.
    pub trace_events: usize,
}

/// Runs the two arms interleaved (plain, traced, plain, traced, …) so
/// machine drift hits both equally, and validates the captured trace.
pub fn measure(preset: PresetId, runs: usize) -> TelemetryReport {
    let spec = crate::runner::spec_for(preset, &MigrationOptions::default());
    let planner = AStarPlanner::default();
    // Park whatever sink the caller had; the plain arm must run dark.
    let saved = klotski_telemetry::swap(None);

    let mut plain_ms = f64::INFINITY;
    let mut traced_ms = f64::INFINITY;
    let mut summary = klotski_telemetry::TraceSummary::default();
    let mut trace_lines = 0usize;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        planner.plan(&spec).expect("preset plans");
        plain_ms = plain_ms.min(t0.elapsed().as_secs_f64() * 1e3);

        let ring = Arc::new(RingSink::new(1 << 20));
        klotski_telemetry::swap(Some(ring.clone()));
        let t0 = Instant::now();
        planner.plan(&spec).expect("preset plans");
        traced_ms = traced_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        klotski_telemetry::swap(None);

        let lines = ring.lines();
        trace_lines = lines.len();
        let text = lines.join("\n");
        summary = klotski_telemetry::validate_trace(&text).expect("trace validates");
    }
    klotski_telemetry::swap(saved);

    TelemetryReport {
        preset: preset.to_string(),
        runs: runs.max(1),
        plain_ms,
        traced_ms,
        overhead_pct: (traced_ms - plain_ms) / plain_ms * 100.0,
        trace_lines,
        trace_spans: summary.spans,
        trace_events: summary.events,
    }
}

/// The `telemetry` experiment: overhead on preset C, written to
/// `BENCH_telemetry.json`.
pub fn telemetry() -> String {
    let report = measure(PresetId::C, 3);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = "BENCH_telemetry.json";
    let note = match std::fs::write(path, &json) {
        Ok(()) => format!("wrote {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let mut t = Table::new([
        "preset",
        "runs",
        "plain ms",
        "traced ms",
        "overhead",
        "trace lines",
    ]);
    t.row([
        report.preset.clone(),
        report.runs.to_string(),
        format!("{:.2}", report.plain_ms),
        format!("{:.2}", report.traced_ms),
        format!("{:+.2}%", report.overhead_pct),
        report.trace_lines.to_string(),
    ]);
    format!(
        "== Telemetry overhead (A* search, trace on vs off) ==\n{}\n[{note}]",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_captures_a_valid_trace_and_finite_overhead() {
        let report = measure(PresetId::A, 1);
        assert!(report.plain_ms.is_finite() && report.plain_ms > 0.0);
        assert!(report.traced_ms.is_finite() && report.traced_ms > 0.0);
        assert!(report.overhead_pct.is_finite());
        // The traced arm must have captured at least the astar.plan span.
        assert!(report.trace_spans >= 1, "{report:?}");
        assert_eq!(report.trace_lines, report.trace_spans + report.trace_events);
    }
}
