//! Regenerates the paper's evaluation tables and figures.
//!
//! ```text
//! cargo run -p klotski-bench --release --bin report            # everything
//! cargo run -p klotski-bench --release --bin report -- fig8    # one experiment
//! cargo run -p klotski-bench --release --bin report -- fig11 fig12
//! ```
//!
//! Flags:
//! - `--threads N` — override the lane count of every experiment's specs.
//!
//! Environment:
//! - `KLOTSKI_FULL_SCALE=1` — build D/E at full paper scale (slow);
//! - `KLOTSKI_BENCH_TIMEOUT_SECS` — per-planner cap (default 120);
//! - `KLOTSKI_FULL_SCALE_STEPS` / `KLOTSKI_FULL_SCALE_MIN_TIME_MS` —
//!   walk length and per-arm window of the `full-scale` experiment;
//! - `KLOTSKI_LONGHORIZON_WAVES` — storm waves per worker-pool width in
//!   the `long-horizon` experiment (default 6);
//! - `KLOTSKI_SERVICE_ROUNDS` — interleaved measurement rounds in the
//!   `service` experiment (default 3);
//! - `KLOTSKI_FLEET_DOCS` / `KLOTSKI_FLEET_REQUESTS` /
//!   `KLOTSKI_FLEET_CLIENTS` — zipf workload shape of the `fleet`
//!   experiment (defaults 12 / 72 / 8).

use klotski_bench::{
    experiments, fleet, full_scale, incremental, longhorizon, parallel, robust, runner, scenarios,
    service, telemetry,
};
use klotski_telemetry::{log_event, registry};

/// A named experiment: label plus the function rendering its output.
type Experiment = (&'static str, fn() -> String);

const EXPERIMENTS: [Experiment; 17] = [
    ("table1", experiments::table1),
    ("table3", experiments::table3),
    ("fig8", experiments::fig8),
    ("fig9", experiments::fig9),
    ("fig10", experiments::fig10),
    ("fig11", experiments::fig11),
    ("fig12", experiments::fig12),
    ("fig13", experiments::fig13),
    ("parallel", parallel::parallel),
    ("incremental", incremental::incremental),
    ("robust", robust::robust),
    ("full-scale", full_scale::full_scale),
    ("scenarios", scenarios::scenarios),
    ("service", service::service),
    ("fleet", fleet::fleet),
    ("telemetry", telemetry::telemetry),
    ("long-horizon", longhorizon::longhorizon),
];

fn main() {
    // Progress goes to stderr as structured one-per-line JSON events, so
    // stdout stays pure experiment output (tables and figures).
    klotski_telemetry::install(std::sync::Arc::new(klotski_telemetry::StderrSink));
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let threads = args.get(i + 1).and_then(|v| v.parse::<usize>().ok());
        match threads {
            Some(t) if t >= 1 => runner::set_thread_override(t),
            _ => {
                eprintln!("--threads requires a positive integer");
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    let selected: Vec<&Experiment> = if args.is_empty() || args[0] == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        let mut picked = Vec::new();
        for arg in &args {
            match EXPERIMENTS.iter().find(|(name, _)| name == arg) {
                Some(exp) => picked.push(exp),
                None => {
                    let available = EXPERIMENTS
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ");
                    // Plain stderr too: log_event! compiles to nothing
                    // without the `trace` feature, and this diagnostic must
                    // reach the user unconditionally.
                    eprintln!("unknown experiment {arg:?}; available: {available}, all");
                    log_event!(
                        "report.unknown_experiment",
                        "name" = arg.as_str(),
                        "available" = available.as_str(),
                    );
                    std::process::exit(2);
                }
            }
        }
        picked
    };

    for (name, run) in selected {
        let start = std::time::Instant::now();
        // Snapshot the process-global metrics registry around each
        // experiment so its emitted delta is its own, not cumulative
        // across the binary's lifetime.
        let baseline = registry().snapshot();
        let output = run();
        println!("{output}");
        let moved = registry().counters_since(&baseline);
        let counters = moved
            .iter()
            .map(|(series, delta)| format!("{series}=+{delta}"))
            .collect::<Vec<_>>()
            .join(" ");
        log_event!(
            "report.experiment",
            "name" = *name,
            "secs" = start.elapsed().as_secs_f64(),
            "counters_moved" = moved.len() as u64,
            "counters" = counters.as_str(),
        );
    }
    klotski_telemetry::uninstall();
}
