//! Composed parallel × incremental satisfiability measurement: a recorded
//! deterministic planner-style walk (batched expansions with parent
//! hand-over) replayed under three configurations — incremental-only
//! (1 thread), parallel-only (from-scratch at N lanes), and the combined
//! mode (incremental at N lanes) — plus a wall-time row for preset E,
//! which runs at full paper scale under `KLOTSKI_FULL_SCALE=1`. The
//! `report` binary's `full-scale` experiment renders a table and writes
//! the raw numbers to `BENCH_full_scale.json`.
//!
//! Environment:
//! - `KLOTSKI_FULL_SCALE_STEPS` — walk length (default 3; CI smoke uses 1);
//! - `KLOTSKI_FULL_SCALE_MIN_TIME_MS` — per-arm measuring window
//!   (default 1500).

use crate::table::Table;
use klotski_core::migration::{MigrationOptions, MigrationSpec};
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::{ActionTypeId, CompactState};
use klotski_parallel::default_lanes;
use klotski_topology::presets::{self, PresetId};
use klotski_topology::NetState;
use serde::Serialize;
use std::time::{Duration, Instant};

/// One thread count's three-way comparison in `BENCH_full_scale.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ComboRow {
    /// Preset id.
    pub preset: String,
    /// Lanes used by the parallel-only and combined arms.
    pub threads: usize,
    /// Checks per second: incremental on, 1 thread.
    pub incremental_only_checks_per_sec: f64,
    /// Checks per second: from-scratch routing at `threads` lanes.
    pub parallel_only_checks_per_sec: f64,
    /// Checks per second: incremental on at `threads` lanes.
    pub combined_checks_per_sec: f64,
    /// `combined / incremental_only`.
    pub combined_vs_incremental: f64,
    /// `combined / parallel_only`.
    pub combined_vs_parallel: f64,
}

/// The preset E wall-time measurement.
#[derive(Debug, Clone, Serialize)]
pub struct WallRow {
    /// Preset id ("E").
    pub preset: String,
    /// Whether the topology was built at full paper scale
    /// (`KLOTSKI_FULL_SCALE=1`) or bench-shrunk.
    pub full_scale: bool,
    /// Lanes used.
    pub threads: usize,
    /// Walk steps replayed.
    pub steps: usize,
    /// Satisfiability checks issued by the replay.
    pub checks: u64,
    /// Wall-clock time for the replay, milliseconds.
    pub wall_ms: f64,
}

/// The JSON document written to `BENCH_full_scale.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FullScaleReport {
    /// `available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    pub rows: Vec<ComboRow>,
    pub wall: WallRow,
}

/// One recorded expansion: the parent (handed to `check_batch_from`
/// planner-style) and its candidate children.
struct Step {
    v: CompactState,
    state: NetState,
    cand: Vec<(ActionTypeId, CompactState, NetState)>,
}

/// Expands every applicable successor of `(v, state)`.
fn expand(
    spec: &MigrationSpec,
    v: &CompactState,
    state: &NetState,
) -> Vec<(ActionTypeId, CompactState, NetState)> {
    let mut cand = Vec::new();
    for a in spec.actions.ids() {
        if v.count(a) >= spec.target_counts.count(a) {
            continue;
        }
        let mut ns = state.clone();
        spec.apply_next(&mut ns, v, a);
        cand.push((a, v.advanced(a), ns));
    }
    cand
}

/// Records a deterministic walk of up to `max_steps` batched expansions,
/// advancing along the first feasible edge of each batch. All arms replay
/// this identical work list.
fn record_walk(spec: &MigrationSpec, max_steps: usize) -> Vec<Step> {
    let mut scout = SatChecker::with_threads(spec, EscMode::Off, 1);
    let mut v = CompactState::origin(spec.num_types());
    let mut state = spec.initial.clone();
    let mut steps = Vec::new();
    for _ in 0..max_steps {
        let cand = expand(spec, &v, &state);
        if cand.is_empty() {
            break;
        }
        let refs: Vec<_> = cand.iter().map(|(a, nv, ns)| (nv, ns, Some(*a))).collect();
        let verdicts = scout.check_batch_from(spec, Some((&v, &state)), &refs);
        steps.push(Step {
            v: v.clone(),
            state: state.clone(),
            cand: cand.clone(),
        });
        match verdicts.iter().position(|&ok| ok) {
            Some(i) => {
                v = steps.last().unwrap().cand[i].1.clone();
                state = steps.last().unwrap().cand[i].2.clone();
            }
            None => break,
        }
    }
    steps
}

/// Replays the recorded walk once through `checker`, returning the number
/// of checks issued.
fn replay(checker: &mut SatChecker, spec: &MigrationSpec, steps: &[Step]) -> u64 {
    let mut checks = 0u64;
    for s in steps {
        let refs: Vec<_> = s
            .cand
            .iter()
            .map(|(a, nv, ns)| (nv, ns, Some(*a)))
            .collect();
        checker.check_batch_from(spec, Some((&s.v, &s.state)), &refs);
        checks += refs.len() as u64;
    }
    checks
}

/// Interleaved three-arm measurement at one lane count: one replay per
/// arm per round, round-robin until `min_time` of measurement has
/// elapsed, timing each arm's replays individually. Interleaving cancels
/// slow machine drift (frequency scaling, page-cache warm-up) that
/// arm-at-a-time measurement folds entirely into whichever arm runs
/// last, and rotating which arm starts each round spreads the cache
/// state each arm inherits from its predecessor evenly — the arm that
/// runs right after the cache-hungry from-scratch arm would otherwise
/// pay a systematic penalty.
fn measure_row(
    incr_spec: &MigrationSpec,
    full_spec: &MigrationSpec,
    steps: &[Step],
    threads: usize,
    min_time: Duration,
) -> ComboRow {
    let mut arms = [
        (
            incr_spec,
            SatChecker::with_threads(incr_spec, EscMode::Off, 1),
        ),
        (
            incr_spec,
            SatChecker::with_threads(incr_spec, EscMode::Off, threads),
        ),
        (
            full_spec,
            SatChecker::with_threads(full_spec, EscMode::Off, threads),
        ),
    ];
    for (spec, checker) in arms.iter_mut() {
        replay(checker, spec, steps); // warm-up: lane scratch + routing caches
    }
    let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let start = Instant::now();
    let mut round = 0usize;
    while start.elapsed() < min_time {
        for k in 0..arms.len() {
            let i = (round + k) % arms.len();
            let (spec, checker) = &mut arms[i];
            let t0 = Instant::now();
            let checks = replay(checker, spec, steps);
            samples[i].push(checks as f64 / t0.elapsed().as_secs_f64().max(1e-9));
        }
        round += 1;
    }
    // Median round rate per arm (see `parallel::median`): one preempted
    // round cannot drag an arm's reported throughput.
    let mut rate = |i: usize| crate::parallel::median(&mut samples[i]);
    let (incr_only, comb, par) = (rate(0), rate(1), rate(2));
    ComboRow {
        preset: String::new(), // filled by the caller
        threads,
        incremental_only_checks_per_sec: incr_only,
        parallel_only_checks_per_sec: par,
        combined_checks_per_sec: comb,
        combined_vs_incremental: comb / incr_only,
        combined_vs_parallel: comb / par,
    }
}

/// Runs the three-way sweep on `combo_preset` and the wall-time replay on
/// `wall_preset`, building the JSON report.
pub fn measure(
    combo_preset: PresetId,
    wall_preset: PresetId,
    thread_counts: &[usize],
    walk_steps: usize,
    min_time: Duration,
) -> FullScaleReport {
    let incr_spec = crate::runner::spec_for(combo_preset, &MigrationOptions::default());
    let full_spec = crate::runner::spec_for(
        combo_preset,
        &MigrationOptions {
            incremental: false,
            ..MigrationOptions::default()
        },
    );
    let walk = record_walk(&incr_spec, walk_steps);
    let mut rows = Vec::new();
    for &t in thread_counts {
        let mut row = measure_row(&incr_spec, &full_spec, &walk, t, min_time);
        row.preset = combo_preset.to_string();
        rows.push(row);
    }

    // Wall-time row: the combined mode on the big preset, full paper scale
    // when the environment requests it.
    let wall_spec = crate::runner::spec_for(wall_preset, &MigrationOptions::default());
    let wall_threads = crate::runner::thread_override().unwrap_or_else(|| default_lanes().max(2));
    let wall_walk = record_walk(&wall_spec, walk_steps);
    let mut checker = SatChecker::with_threads(&wall_spec, EscMode::Off, wall_threads);
    replay(&mut checker, &wall_spec, &wall_walk); // warm-up
    let start = Instant::now();
    let checks = replay(&mut checker, &wall_spec, &wall_walk);
    let wall = WallRow {
        preset: wall_preset.to_string(),
        full_scale: presets::full_scale_requested(),
        threads: wall_threads,
        steps: wall_walk.len(),
        checks,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    };
    FullScaleReport {
        available_parallelism: default_lanes(),
        rows,
        wall,
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
}

/// The `full-scale` experiment: renders the sweep as a table and writes
/// `BENCH_full_scale.json` in the working directory.
pub fn full_scale() -> String {
    let steps = env_usize("KLOTSKI_FULL_SCALE_STEPS", 3);
    let min_ms = env_usize("KLOTSKI_FULL_SCALE_MIN_TIME_MS", 1500);
    let report = measure(
        PresetId::C,
        PresetId::E,
        &[2, 4, 8],
        steps,
        Duration::from_millis(min_ms as u64),
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = "BENCH_full_scale.json";
    let note = match std::fs::write(path, &json) {
        Ok(()) => format!("wrote {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let mut t = Table::new([
        "preset",
        "threads",
        "incr-only checks/s",
        "par-only checks/s",
        "combined checks/s",
        "vs incr",
        "vs par",
    ]);
    for r in &report.rows {
        t.row([
            r.preset.clone(),
            r.threads.to_string(),
            format!("{:.1}", r.incremental_only_checks_per_sec),
            format!("{:.1}", r.parallel_only_checks_per_sec),
            format!("{:.1}", r.combined_checks_per_sec),
            format!("{:.2}x", r.combined_vs_incremental),
            format!("{:.2}x", r.combined_vs_parallel),
        ]);
    }
    let w = &report.wall;
    format!(
        "== Combined parallel x incremental satcheck ({} lanes available) ==\n{}\n\
         preset {} wall time: {:.0}ms for {} checks over {} steps \
         ({} lanes, full scale: {})\n[{note}]",
        report.available_parallelism,
        t.render(),
        w.preset,
        w.wall_ms,
        w.checks,
        w.steps,
        w.threads,
        w.full_scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_finite_rates_on_preset_a() {
        // Correctness of the plumbing, not the numbers: tiny walk and
        // budget on the smallest preset.
        let report = measure(PresetId::A, PresetId::A, &[2], 2, Duration::from_millis(10));
        assert_eq!(report.rows.len(), 1);
        let r = &report.rows[0];
        assert!(
            r.incremental_only_checks_per_sec.is_finite()
                && r.incremental_only_checks_per_sec > 0.0
        );
        assert!(r.parallel_only_checks_per_sec.is_finite() && r.parallel_only_checks_per_sec > 0.0);
        assert!(r.combined_checks_per_sec.is_finite() && r.combined_checks_per_sec > 0.0);
        assert!(report.wall.checks > 0 && report.wall.wall_ms >= 0.0);
        assert!(report.wall.steps <= 2);
    }

    #[test]
    fn recorded_walk_advances_distinct_states() {
        let spec = crate::runner::spec_for(PresetId::A, &MigrationOptions::default());
        let walk = record_walk(&spec, 4);
        assert!(!walk.is_empty());
        for w in windows2(&walk) {
            assert_ne!(w.0.v.counts(), w.1.v.counts(), "walk must advance");
        }
    }

    fn windows2(steps: &[Step]) -> impl Iterator<Item = (&Step, &Step)> {
        steps.iter().zip(steps.iter().skip(1))
    }
}
