//! A bounded broadcast bus bridging trace lines to live subscribers.
//!
//! The sink slot ([`crate::sink`]) is a single write-only destination; the
//! bus is its fan-out counterpart for *readers*: the service's SSE
//! endpoint subscribes here to stream `astar.progress` / `dp.progress` /
//! `controller.phase` events to operators while a job runs. Every line
//! that reaches [`crate::sink::emit`] is also offered to the bus, so
//! subscribing works whether or not a sink is installed — span/event
//! emission is gated on [`crate::emit_enabled`], which is true when
//! either a sink is installed or at least one subscriber exists.
//!
//! Three properties the planners depend on:
//!
//! * **Never blocks.** Each subscription owns a bounded queue; when it is
//!   full the oldest line is dropped and the subscription's lag-drop
//!   counter advances. A stalled HTTP client can therefore never apply
//!   backpressure to a search thread.
//! * **Stream isolation.** Publishers are tagged per thread with a
//!   [`StreamTag`] (the service tags its worker thread with the job's
//!   stream id before running it); a subscription filters on one stream
//!   id, or 0 for everything. Lines emitted by pool worker threads carry
//!   no tag — the per-job progress events (`astar.progress`,
//!   `dp.progress`, `controller.phase`) are all emitted on the tagged
//!   thread itself.
//! * **Cheap when idle.** With no subscribers, [`EventBus::publish`] is a
//!   single relaxed atomic load.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// The process-global event bus.
pub fn bus() -> &'static EventBus {
    static BUS: OnceLock<EventBus> = OnceLock::new();
    BUS.get_or_init(EventBus::default)
}

thread_local! {
    /// Stream id attached to lines published from this thread (0 = untagged).
    static CURRENT_STREAM: Cell<u64> = const { Cell::new(0) };
}

/// The stream id lines published from this thread carry (0 when untagged).
pub fn current_stream() -> u64 {
    CURRENT_STREAM.with(|s| s.get())
}

/// Tags this thread's published lines with `stream` until the guard drops
/// (restoring the previous tag, so tags nest). `!Send` for the same reason
/// [`crate::SpanGuard`] is: the tag lives in a thread-local.
pub struct StreamTag {
    prev: u64,
    _not_send: PhantomData<*const ()>,
}

/// Starts tagging this thread's published lines with `stream`.
pub fn tag_stream(stream: u64) -> StreamTag {
    let prev = CURRENT_STREAM.with(|s| s.replace(stream));
    StreamTag {
        prev,
        _not_send: PhantomData,
    }
}

impl Drop for StreamTag {
    fn drop(&mut self) {
        CURRENT_STREAM.with(|s| s.set(self.prev));
    }
}

#[derive(Default)]
struct SubState {
    queue: VecDeque<String>,
    closed: bool,
}

struct SubCore {
    /// Stream this subscription wants (0 = all).
    stream: u64,
    /// Queue bound; the oldest line is dropped on overflow.
    capacity: usize,
    state: Mutex<SubState>,
    ready: Condvar,
    /// Lines this subscription lost to overflow.
    dropped: AtomicU64,
}

/// A live subscription. Dropping it unsubscribes.
pub struct Subscription {
    core: Arc<SubCore>,
}

impl Subscription {
    /// Next line, waiting up to `timeout`. `None` on timeout — the caller's
    /// cue to emit a heartbeat and try again.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<String> {
        let mut state = self.core.state.lock().unwrap();
        loop {
            if let Some(line) = state.queue.pop_front() {
                return Some(line);
            }
            let (next, wait) = self.core.ready.wait_timeout(state, timeout).unwrap();
            state = next;
            if wait.timed_out() {
                return state.queue.pop_front();
            }
        }
    }

    /// Next line if one is already queued.
    pub fn try_recv(&self) -> Option<String> {
        self.core.state.lock().unwrap().queue.pop_front()
    }

    /// Lines this subscription lost to queue overflow so far.
    pub fn dropped(&self) -> u64 {
        self.core.dropped.load(Ordering::Relaxed)
    }

    /// The stream this subscription filters on (0 = all).
    pub fn stream(&self) -> u64 {
        self.core.stream
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.core.state.lock().unwrap().closed = true;
        bus().unsubscribe(&self.core);
    }
}

/// Bounded broadcast of trace lines to per-subscriber queues.
#[derive(Default)]
pub struct EventBus {
    subs: Mutex<Vec<Arc<SubCore>>>,
    /// Mirror of `subs.len()` readable without the lock — the publish gate.
    active: AtomicUsize,
    dropped_total: AtomicU64,
    /// Stream ids start at 1; 0 means "all streams" / "untagged".
    next_stream: AtomicU64,
}

impl EventBus {
    /// Opens a subscription to `stream` (0 = every stream) buffering at
    /// most `capacity` lines (≥ 1, oldest dropped on overflow).
    pub fn subscribe(&self, stream: u64, capacity: usize) -> Subscription {
        let core = Arc::new(SubCore {
            stream,
            capacity: capacity.max(1),
            state: Mutex::new(SubState::default()),
            ready: Condvar::new(),
            dropped: AtomicU64::new(0),
        });
        let mut subs = self.subs.lock().unwrap();
        subs.push(Arc::clone(&core));
        self.active.store(subs.len(), Ordering::Relaxed);
        drop(subs);
        Subscription { core }
    }

    /// True when at least one subscription is open. One relaxed load; part
    /// of the [`crate::emit_enabled`] hot-path gate.
    #[inline]
    pub fn has_subscribers(&self) -> bool {
        self.active.load(Ordering::Relaxed) > 0
    }

    /// Number of open subscriptions (the service's 503-shedding input).
    pub fn subscriber_count(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Total lines lost to subscriber queue overflow, process-wide.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// Allocates a fresh nonzero stream id. Process-global so two services
    /// in one test binary can share the bus without colliding.
    pub fn next_stream_id(&self) -> u64 {
        self.next_stream.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Offers `line` to every subscription matching this thread's stream
    /// tag. Called by [`crate::sink::emit`] for every trace line.
    pub(crate) fn publish(&self, line: &str) {
        if !self.has_subscribers() {
            return;
        }
        let stream = current_stream();
        let subs = self.subs.lock().unwrap();
        for sub in subs.iter() {
            if sub.stream != 0 && sub.stream != stream {
                continue;
            }
            let mut state = sub.state.lock().unwrap();
            if state.closed {
                continue;
            }
            if state.queue.len() >= sub.capacity {
                state.queue.pop_front();
                sub.dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
            }
            state.queue.push_back(line.to_string());
            drop(state);
            sub.ready.notify_one();
        }
    }

    fn unsubscribe(&self, core: &Arc<SubCore>) {
        let mut subs = self.subs.lock().unwrap();
        subs.retain(|s| !Arc::ptr_eq(s, core));
        self.active.store(subs.len(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every test here opens subscriptions, which flips the process-wide
    // [`crate::emit_enabled`] gate — serialize against the sink tests in
    // `span.rs` that assert emission is dark.

    #[test]
    fn publish_reaches_matching_streams_only() {
        let _guard = crate::test_support::sink_lock();
        let sub_all = bus().subscribe(0, 16);
        let s1 = bus().next_stream_id();
        let s2 = bus().next_stream_id();
        assert_ne!(s1, s2);
        let sub_s1 = bus().subscribe(s1, 16);

        {
            let _tag = tag_stream(s1);
            assert_eq!(current_stream(), s1);
            bus().publish("one");
        }
        {
            let _tag = tag_stream(s2);
            bus().publish("two");
        }
        assert_eq!(current_stream(), 0, "tags restore on drop");

        assert_eq!(sub_s1.try_recv().as_deref(), Some("one"));
        assert_eq!(sub_s1.try_recv(), None, "stream filter excludes s2");
        // The catch-all subscription sees both.
        let mut seen = Vec::new();
        while let Some(l) = sub_all.try_recv() {
            seen.push(l);
        }
        let ours: Vec<_> = seen.iter().filter(|l| *l == "one" || *l == "two").collect();
        assert_eq!(ours, ["one", "two"]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts_lag() {
        let _guard = crate::test_support::sink_lock();
        let stream = bus().next_stream_id();
        let sub = bus().subscribe(stream, 2);
        let _tag = tag_stream(stream);
        for i in 0..5 {
            bus().publish(&format!("l{i}"));
        }
        assert_eq!(sub.dropped(), 3);
        assert!(bus().dropped_total() >= 3);
        assert_eq!(sub.try_recv().as_deref(), Some("l3"));
        assert_eq!(sub.try_recv().as_deref(), Some("l4"));
        assert_eq!(sub.try_recv(), None);
    }

    #[test]
    fn recv_timeout_wakes_on_publish_and_times_out_when_idle() {
        let _guard = crate::test_support::sink_lock();
        let stream = bus().next_stream_id();
        let sub = bus().subscribe(stream, 4);
        assert_eq!(sub.recv_timeout(Duration::from_millis(10)), None);

        let publisher = std::thread::spawn(move || {
            let _tag = tag_stream(stream);
            std::thread::sleep(Duration::from_millis(20));
            bus().publish("wake");
        });
        assert_eq!(
            sub.recv_timeout(Duration::from_secs(5)).as_deref(),
            Some("wake")
        );
        publisher.join().unwrap();
    }

    #[test]
    fn dropping_a_subscription_unsubscribes_it() {
        let _guard = crate::test_support::sink_lock();
        let before = bus().subscriber_count();
        let stream = bus().next_stream_id();
        {
            let _sub = bus().subscribe(stream, 4);
            assert!(bus().subscriber_count() > before);
            assert!(bus().has_subscribers());
        }
        assert_eq!(bus().subscriber_count(), before);
    }

    #[test]
    fn emitted_events_reach_the_bus_without_a_sink() {
        // End to end: log_event! → sink::emit → bus, no sink installed.
        // Serialized against sink-swapping tests in span.rs via the shared
        // lock so their exact-line-count assertions stay deterministic.
        let _guard = crate::test_support::sink_lock();
        let prev = crate::swap(None);
        let stream = bus().next_stream_id();
        let sub = bus().subscribe(stream, 64);
        {
            let _tag = tag_stream(stream);
            assert!(crate::emit_enabled(), "subscriber alone enables emission");
            crate::log_event!("bus.test", "n" = 7u64);
        }
        let line = sub.recv_timeout(Duration::from_secs(5)).expect("line");
        match crate::parse_line(&line).unwrap() {
            crate::Record::Event { name, fields, .. } => {
                assert_eq!(name, "bus.test");
                assert_eq!(fields.get("n").and_then(|v| v.as_f64()), Some(7.0));
            }
            other => panic!("expected event, got {other:?}"),
        }
        assert_eq!(sub.dropped(), 0);
        drop(sub);
        crate::swap(prev);
    }
}
