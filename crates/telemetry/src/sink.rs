//! Pluggable trace sinks and the process-global sink slot.
//!
//! Exactly one sink is installed at a time. The hot-path gate is
//! [`enabled`] — a single relaxed atomic load — so instrumented code pays
//! nothing beyond that when tracing is off. Swapping sinks flushes the
//! outgoing one, so a caller that uninstalls a [`FileSink`] can read a
//! complete file immediately afterwards.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A destination for JSONL trace lines. `write_line` receives one line
/// without the trailing newline and must be safe to call from any thread.
pub trait Sink: Send + Sync {
    /// Appends one trace line.
    fn write_line(&self, line: &str);
    /// Makes previously written lines durable/visible. Default: no-op.
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// True when a sink is installed. This is the fast path every span/event
/// checks first; keep call sites cheap by checking it before building
/// fields.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global trace sink, replacing (and
/// flushing) any previous one.
pub fn install<S: Sink + 'static>(sink: Arc<S>) {
    let _ = swap(Some(sink as Arc<dyn Sink>));
}

/// Removes the current sink (flushing it) and disables tracing.
/// Returns the removed sink, if any.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    swap(None)
}

/// Replaces the global sink wholesale and returns the previous one
/// (flushed). `swap(None)` disables tracing; restoring the returned value
/// later re-enables it — the pattern benches use to measure an untraced
/// arm without losing the caller's sink.
pub fn swap(new: Option<Arc<dyn Sink>>) -> Option<Arc<dyn Sink>> {
    let mut slot = SINK.write().unwrap();
    ENABLED.store(new.is_some(), Ordering::Relaxed);
    let old = std::mem::replace(&mut *slot, new);
    if let Some(old) = &old {
        old.flush();
    }
    old
}

/// Writes one line to the installed sink, if any, and offers it to the
/// live-subscriber [`bus`](crate::bus) — the two destinations are
/// independent, so SSE streaming works with no sink installed and a trace
/// file still captures everything while subscribers watch.
pub fn emit(line: &str) {
    if enabled() {
        if let Some(sink) = SINK.read().unwrap().as_ref() {
            sink.write_line(line);
        }
    }
    crate::bus::bus().publish(line);
}

/// Writes trace lines to stderr, one per call. Used by the `report`
/// binary's structured progress logging.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn write_line(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// Buffered JSONL file writer. Lines become durable on [`Sink::flush`]
/// (called automatically when the sink is swapped out) or on drop.
#[derive(Debug)]
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for FileSink {
    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

/// An in-memory ring buffer of the most recent `capacity` lines, for
/// tests: install, exercise, then assert on [`lines`](Self::lines).
#[derive(Debug)]
pub struct RingSink {
    lines: Mutex<VecDeque<String>>,
    capacity: usize,
}

impl RingSink {
    /// A ring keeping at most `capacity` lines (≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            lines: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Snapshot of the buffered lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().iter().cloned().collect()
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap().len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards everything captured so far.
    pub fn clear(&self) {
        self.lines.lock().unwrap().clear();
    }
}

impl Sink for RingSink {
    fn write_line(&self, line: &str) {
        let mut lines = self.lines.lock().unwrap();
        if lines.len() == self.capacity {
            lines.pop_front();
        }
        lines.push_back(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_sink_caps_capacity_and_keeps_newest() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.write_line(&format!("line{i}"));
        }
        assert_eq!(ring.lines(), vec!["line2", "line3", "line4"]);
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn file_sink_round_trips_lines() {
        let path = std::env::temp_dir().join(format!("klotski-sink-{}.jsonl", std::process::id()));
        let sink = FileSink::create(&path).unwrap();
        sink.write_line("alpha");
        sink.write_line("beta");
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "alpha\nbeta\n");
        let _ = std::fs::remove_file(&path);
    }
}
