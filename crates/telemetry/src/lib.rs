//! # klotski-telemetry
//!
//! The observability substrate shared by the planner, the routing engine,
//! the worker pool, the service, and the CLI. Std-only, like the rest of
//! the workspace. Two independent facilities:
//!
//! * **Spans and events** — hierarchical RAII spans ([`SpanGuard`]) with a
//!   thread-local span stack and monotonic microsecond timestamps, emitted
//!   as JSONL to a process-global pluggable [`Sink`] (file, stderr, or an
//!   in-memory ring buffer for tests). Emission is gated twice: the
//!   `trace` cargo feature compiles the [`span!`]/[`log_event!`] macros to
//!   nothing when disabled, and at runtime nothing is recorded unless a
//!   sink is installed ([`enabled`] is a single relaxed atomic load), so
//!   the instrumented hot paths cost near zero when tracing is off.
//! * **Metrics** — lock-free [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s behind a process-global [`Registry`], rendered in
//!   Prometheus text format. Metrics are always live (the service scrapes
//!   them without any trace sink); hot paths cache `Arc` handles at
//!   construction so recording is one relaxed atomic op.
//!
//! Trace lines follow a small schema ([`schema`]) with a validating parser
//! used by tests, `klotski trace <file>`, and CI.
//!
//! ```
//! use klotski_telemetry::{self as telemetry, span, RingSink};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingSink::new(64));
//! let prev = telemetry::swap(Some(ring.clone()));
//! {
//!     let mut root = span!("demo.root", "preset" = "a");
//!     root.field("phase", 1u64);
//! } // guard drop emits one JSONL line
//! telemetry::swap(prev);
//! assert_eq!(ring.lines().len(), 1);
//! ```

pub mod bus;
pub mod metrics;
pub mod schema;
pub mod sink;
pub mod span;

pub use bus::{bus, current_stream, tag_stream, EventBus, StreamTag, Subscription};
pub use metrics::{
    registry, Counter, Gauge, Histogram, LogLinearHistogram, LogLinearSnapshot, Registry,
    RegistrySnapshot,
};
pub use schema::{parse_line, validate_trace, Record, SchemaError, TraceSummary};
pub use sink::{enabled, install, swap, uninstall, FileSink, RingSink, Sink, StderrSink};
pub use span::{current_span_id, log_event_fields, SpanGuard};

/// True when emitting a span/event line would reach anyone: a sink is
/// installed or the [`bus`] has at least one live subscriber. The runtime
/// gate used by [`span!`]/[`log_event!`] and [`SpanGuard::enter`]; two
/// relaxed atomic loads on the hot path.
#[inline]
pub fn emit_enabled() -> bool {
    sink::enabled() || bus::bus().has_subscribers()
}

/// Shared test-only lock serializing tests that install process-global
/// sinks or assert on lines flowing through the global bus.
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    static SINK_LOCK: Mutex<()> = Mutex::new(());

    pub fn sink_lock() -> MutexGuard<'static, ()> {
        SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A typed span/event field value, converted from ordinary Rust scalars at
/// the call site (`guard.field("lane", 3u64)`).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean field.
    Bool(bool),
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// String field.
    Str(String),
}

impl FieldValue {
    pub(crate) fn to_json(&self) -> serde::Value {
        match self {
            FieldValue::Bool(b) => serde::Value::Bool(*b),
            FieldValue::U64(n) => serde::Value::Number(*n as f64),
            FieldValue::I64(n) => serde::Value::Number(*n as f64),
            FieldValue::F64(x) if x.is_finite() => serde::Value::Number(*x),
            FieldValue::F64(_) => serde::Value::Null,
            FieldValue::Str(s) => serde::Value::String(s.clone()),
        }
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Opens a span: `let _guard = span!("astar.plan", "preset" = "c");`.
///
/// The guard must be bound to a local; its `Drop` closes the span and
/// emits the JSONL line. With the `trace` feature off this expands to a
/// disabled guard and none of the field expressions are evaluated.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:literal = $v:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __guard = $crate::SpanGuard::enter($name);
        $( __guard.field($k, $v); )*
        __guard
    }};
}

/// Disabled (`trace` feature off): a zero-cost inert guard.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:literal = $v:expr)* $(,)?) => {{
        $crate::SpanGuard::disabled()
    }};
}

/// Emits one structured event line attached to the current span:
/// `log_event!("report.experiment", "name" = name, "secs" = 1.5);`.
///
/// Fields are only evaluated when a sink is installed.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! log_event {
    ($name:expr $(, $k:literal = $v:expr)* $(,)?) => {
        if $crate::emit_enabled() {
            $crate::log_event_fields(
                $name,
                vec![ $( ($k.to_string(), $crate::FieldValue::from($v)) ),* ],
            );
        }
    };
}

/// Disabled (`trace` feature off): evaluates nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! log_event {
    ($name:expr $(, $k:literal = $v:expr)* $(,)?) => {
        ()
    };
}
