//! The trace-line schema and its validating parser.
//!
//! Every line a sink receives is one JSON object of one of two shapes:
//!
//! ```text
//! {"type":"span","name":S,"id":N≥1,"parent":N,"thread":S,
//!  "start_us":N,"dur_us":N,"fields":{...}}
//! {"type":"event","name":S,"span":N,"ts_us":N,"fields":{...}}
//! ```
//!
//! [`parse_line`] checks one line structurally; [`validate_trace`] checks a
//! whole file — unique span ids and resolvable parents. Spans are emitted
//! on guard drop, so a child's line precedes its parent's; the validator
//! therefore collects ids in a first pass and checks references in a
//! second.

use serde::{Map, Value};

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A closed span.
    Span {
        /// Span name (non-empty).
        name: String,
        /// Unique id (≥ 1).
        id: u64,
        /// Parent span id; 0 for roots.
        parent: u64,
        /// Emitting thread's label.
        thread: String,
        /// Open timestamp, µs since the telemetry epoch.
        start_us: u64,
        /// Open-to-close duration, µs.
        dur_us: u64,
        /// Attached fields.
        fields: Map,
    },
    /// A point event.
    Event {
        /// Event name (non-empty).
        name: String,
        /// Enclosing span id; 0 when emitted outside any span.
        span: u64,
        /// Timestamp, µs since the telemetry epoch.
        ts_us: u64,
        /// Attached fields.
        fields: Map,
    },
}

/// A schema violation, locating the offending line (1-based; 0 when the
/// error is not tied to one line).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "trace invalid: {}", self.message)
        } else {
            write!(f, "trace line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SchemaError {}

/// What [`validate_trace`] found in a valid trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Span lines.
    pub spans: usize,
    /// Event lines.
    pub events: usize,
    /// Spans with parent 0.
    pub roots: usize,
}

fn get<'a>(obj: &'a Map, key: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn uint(obj: &Map, key: &str) -> Result<u64, String> {
    let v = get(obj, key)?;
    let n = v
        .as_f64()
        .ok_or_else(|| format!("key {key:?} is not a number"))?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
        return Err(format!("key {key:?} is not a non-negative integer ({n})"));
    }
    Ok(n as u64)
}

fn string(obj: &Map, key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("key {key:?} is not a string"))
}

fn nonempty(obj: &Map, key: &str) -> Result<String, String> {
    let s = string(obj, key)?;
    if s.is_empty() {
        return Err(format!("key {key:?} is empty"));
    }
    Ok(s)
}

fn fields(obj: &Map) -> Result<Map, String> {
    get(obj, "fields")?
        .as_object()
        .cloned()
        .ok_or_else(|| "key \"fields\" is not an object".to_string())
}

/// Parses and structurally validates one trace line.
pub fn parse_line(line: &str) -> Result<Record, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("not JSON: {e}"))?;
    let obj = value.as_object().ok_or("line is not a JSON object")?;
    match get(obj, "type")?.as_str() {
        Some("span") => {
            let id = uint(obj, "id")?;
            if id == 0 {
                return Err("span id must be >= 1".into());
            }
            Ok(Record::Span {
                name: nonempty(obj, "name")?,
                id,
                parent: uint(obj, "parent")?,
                thread: nonempty(obj, "thread")?,
                start_us: uint(obj, "start_us")?,
                dur_us: uint(obj, "dur_us")?,
                fields: fields(obj)?,
            })
        }
        Some("event") => Ok(Record::Event {
            name: nonempty(obj, "name")?,
            span: uint(obj, "span")?,
            ts_us: uint(obj, "ts_us")?,
            fields: fields(obj)?,
        }),
        Some(other) => Err(format!("unknown record type {other:?}")),
        None => Err("key \"type\" is not a string".into()),
    }
}

/// Validates a whole JSONL trace: every line parses, span ids are unique,
/// and every span parent / event span reference is 0 or a span id that
/// appears somewhere in the trace (spans emit child-before-parent, hence
/// the two passes). Blank lines are ignored.
pub fn validate_trace(text: &str) -> Result<TraceSummary, SchemaError> {
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_line(line).map_err(|message| SchemaError {
            line: index + 1,
            message,
        })?;
        records.push((index + 1, record));
    }

    let mut ids = std::collections::HashSet::new();
    for (line, record) in &records {
        if let Record::Span { id, .. } = record {
            if !ids.insert(*id) {
                return Err(SchemaError {
                    line: *line,
                    message: format!("duplicate span id {id}"),
                });
            }
        }
    }

    let mut summary = TraceSummary::default();
    for (line, record) in &records {
        match record {
            Record::Span { parent, .. } => {
                summary.spans += 1;
                if *parent == 0 {
                    summary.roots += 1;
                } else if !ids.contains(parent) {
                    return Err(SchemaError {
                        line: *line,
                        message: format!("parent span {parent} not present in trace"),
                    });
                }
            }
            Record::Event { span, .. } => {
                summary.events += 1;
                if *span != 0 && !ids.contains(span) {
                    return Err(SchemaError {
                        line: *line,
                        message: format!("event references span {span} not present in trace"),
                    });
                }
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPAN: &str = r#"{"type":"span","name":"a","id":2,"parent":1,"thread":"main","start_us":10,"dur_us":5,"fields":{}}"#;
    const ROOT: &str = r#"{"type":"span","name":"r","id":1,"parent":0,"thread":"main","start_us":0,"dur_us":30,"fields":{"k":"v"}}"#;
    const EVENT: &str = r#"{"type":"event","name":"tick","span":1,"ts_us":12,"fields":{"n":3}}"#;

    #[test]
    fn parses_valid_span_and_event_lines() {
        assert!(matches!(
            parse_line(SPAN).unwrap(),
            Record::Span {
                id: 2,
                parent: 1,
                ..
            }
        ));
        assert!(matches!(
            parse_line(EVENT).unwrap(),
            Record::Event { span: 1, .. }
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (line, why) in [
            ("nonsense", "not JSON"),
            ("[1,2]", "not a JSON object"),
            (r#"{"type":"blob"}"#, "unknown record type"),
            (
                r#"{"type":"span","name":"","id":1,"parent":0,"thread":"t","start_us":0,"dur_us":0,"fields":{}}"#,
                "empty",
            ),
            (
                r#"{"type":"span","name":"a","id":0,"parent":0,"thread":"t","start_us":0,"dur_us":0,"fields":{}}"#,
                ">= 1",
            ),
            (
                r#"{"type":"span","name":"a","id":1.5,"parent":0,"thread":"t","start_us":0,"dur_us":0,"fields":{}}"#,
                "integer",
            ),
            (
                r#"{"type":"event","name":"e","span":0,"ts_us":1,"fields":[]}"#,
                "not an object",
            ),
        ] {
            let err = parse_line(line).expect_err(line);
            assert!(err.contains(why), "{line}: {err}");
        }
    }

    #[test]
    fn validates_child_before_parent_order() {
        // Emission order is child first; the validator must accept it.
        let text = format!("{SPAN}\n{EVENT}\n{ROOT}\n");
        let summary = validate_trace(&text).unwrap();
        assert_eq!(
            summary,
            TraceSummary {
                spans: 2,
                events: 1,
                roots: 1
            }
        );
    }

    #[test]
    fn rejects_dangling_references_and_duplicates() {
        let dangling = validate_trace(SPAN).unwrap_err();
        assert!(dangling.message.contains("parent span 1"), "{dangling}");

        let dup = format!("{ROOT}\n{ROOT}");
        let err = validate_trace(&dup).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate"), "{err}");

        let bad_event = r#"{"type":"event","name":"e","span":99,"ts_us":1,"fields":{}}"#;
        let err = validate_trace(bad_event).unwrap_err();
        assert!(err.message.contains("span 99"), "{err}");
    }

    #[test]
    fn blank_lines_are_ignored_and_errors_carry_line_numbers() {
        let text = format!("{ROOT}\n\nnot json\n");
        let err = validate_trace(&text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }
}
