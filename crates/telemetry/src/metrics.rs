//! Lock-free metrics behind a process-global registry.
//!
//! The [`Histogram`] here is the service's former
//! `klotski-service/src/metrics.rs` histogram, relocated so the service,
//! the CLI, and instrumented library crates share one implementation; its
//! bucket bounds and quantile semantics are unchanged (with the empty /
//! `q = 1.0` edge cases pinned down by tests), so the service's Prometheus
//! rendering stays byte-compatible.
//!
//! Instrumented hot paths fetch their `Arc` handles once at construction
//! (`registry().counter("...")`) and afterwards pay one relaxed atomic op
//! per record — the registry's mutexed map is only touched at setup and at
//! render time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Upper bounds of the latency buckets, in microseconds. Geometric series:
/// `bound[i] = 100 · (1.468)^i`, 32 buckets, last bound ≈ 2.6 min; anything
/// slower lands in the implicit overflow bucket.
const BUCKET_BOUNDS_US: [u64; 32] = [
    100, 147, 216, 317, 465, 683, 1_002, 1_472, 2_161, 3_172, 4_657, 6_837, 10_036, 14_733, 21_628,
    31_750, 46_609, 68_422, 100_444, 147_452, 216_460, 317_764, 466_478, 684_789, 1_005_270,
    1_475_737, 2_166_382, 3_180_249, 4_668_606, 6_853_514, 10_060_959, 14_769_488,
];

/// A lock-free fixed-bucket latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len()],
    /// Samples beyond the last bound.
    overflow: AtomicU64,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        let us = sample.as_micros().min(u128::from(u64::MAX)) as u64;
        match BUCKET_BOUNDS_US.iter().position(|&b| us <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Times `f` and records its duration.
    pub fn observe<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Mean sample, seconds. 0 with no samples (never NaN).
    pub fn mean_seconds(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_seconds() / n as f64
    }

    /// Estimated `q`-quantile in seconds (upper bound of the bucket holding
    /// the quantile sample). Edge cases are explicit: an empty histogram
    /// returns 0 (never NaN), a NaN `q` is treated as 0, `q` is clamped to
    /// `[0, 1]`, and `q = 1.0` clamps to the last non-empty bucket — when
    /// only the overflow bucket is occupied that is the largest finite
    /// bound, the tightest claim the histogram can make.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US[i] as f64 / 1e6;
            }
        }
        // Quantile sample sits in the overflow bucket: report the max bound.
        *BUCKET_BOUNDS_US.last().unwrap() as f64 / 1e6
    }
}

/// Sub-bucket resolution of [`LogLinearHistogram`]: 2^7 = 128 linear
/// sub-buckets per power-of-two octave, bounding relative quantile error
/// at 1/128 ≈ 0.78% — the HDR-histogram layout, sized for latency tails
/// the 1.468× geometric [`Histogram`] cannot resolve.
const LL_SUB_BITS: u32 = 7;
const LL_SUBS: usize = 1 << LL_SUB_BITS;
/// First sub-bucketed octave: values below 2^7 µs get exact (1 µs) buckets.
const LL_MIN_OCTAVE: u32 = LL_SUB_BITS;
/// Last octave: 2^40 µs ≈ 12.7 days; slower samples overflow.
const LL_MAX_OCTAVE: u32 = 39;
const LL_BUCKETS: usize = LL_SUBS + (LL_MAX_OCTAVE - LL_MIN_OCTAVE + 1) as usize * LL_SUBS;

/// Bucket index for a sample of `us` microseconds; `None` → overflow.
fn ll_index(us: u64) -> Option<usize> {
    if us < LL_SUBS as u64 {
        return Some(us as usize);
    }
    let octave = 63 - us.leading_zeros();
    if octave > LL_MAX_OCTAVE {
        return None;
    }
    let sub = ((us - (1u64 << octave)) >> (octave - LL_SUB_BITS)) as usize;
    Some(LL_SUBS + (octave - LL_MIN_OCTAVE) as usize * LL_SUBS + sub)
}

/// Inclusive upper bound of bucket `i`, microseconds.
fn ll_bound_us(i: usize) -> u64 {
    if i < LL_SUBS {
        return i as u64;
    }
    let octave = LL_MIN_OCTAVE + ((i - LL_SUBS) / LL_SUBS) as u32;
    let sub = ((i - LL_SUBS) % LL_SUBS) as u64;
    (1u64 << octave) + (sub + 1) * (1u64 << (octave - LL_SUB_BITS)) - 1
}

/// A lock-free log-linear (HDR-style) latency histogram: ~0.78% relative
/// error from 1 µs to 2^40 µs across 4352 buckets. Used where tail
/// fidelity matters (replan latency, audit wall time); the fixed-bucket
/// [`Histogram`] stays the default for coarse service metrics.
#[derive(Debug)]
pub struct LogLinearHistogram {
    buckets: Box<[AtomicU64]>,
    /// Samples beyond the last octave.
    overflow: AtomicU64,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..LL_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        let us = sample.as_micros().min(u128::from(u64::MAX)) as u64;
        match ll_index(us) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Times `f` and records its duration.
    pub fn observe<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Estimated `q`-quantile, seconds. Same edge-case contract as
    /// [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of every bucket — the unit of per-experiment
    /// delta accounting ([`LogLinearSnapshot::since`]).
    pub fn snapshot(&self) -> LogLinearSnapshot {
        LogLinearSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`LogLinearHistogram`], with the same quantile
/// semantics, plus bucketwise subtraction for per-interval views.
#[derive(Debug, Clone)]
pub struct LogLinearSnapshot {
    buckets: Box<[u64]>,
    overflow: u64,
    count: u64,
    sum_us: u64,
}

impl LogLinearSnapshot {
    /// Number of samples in this snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples, seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_us as f64 / 1e6
    }

    /// Mean sample, seconds. 0 with no samples (never NaN).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_seconds() / self.count as f64
    }

    /// Estimated `q`-quantile, seconds. Same edge-case contract as
    /// [`Histogram::quantile`]: empty → 0, NaN `q` → 0, `q` clamped, and
    /// an overflow-resident quantile reports the largest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return ll_bound_us(i) as f64 / 1e6;
            }
        }
        ll_bound_us(LL_BUCKETS - 1) as f64 / 1e6
    }

    /// The samples recorded after `baseline` was taken: bucketwise
    /// saturating subtraction, so an interval's quantiles are computed
    /// from that interval's samples only.
    pub fn since(&self, baseline: &LogLinearSnapshot) -> LogLinearSnapshot {
        LogLinearSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(baseline.buckets.iter())
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            overflow: self.overflow.saturating_sub(baseline.overflow),
            count: self.count.saturating_sub(baseline.count),
            sum_us: self.sum_us.saturating_sub(baseline.sum_us),
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The process-global metric registry: names → shared metric handles.
///
/// Names may carry a Prometheus label suffix (`klotski_pool_tasks_total{lane="0"}`);
/// series sharing the text before `{` form one family and render under one
/// `# HELP` / `# TYPE` header. Get-or-create is idempotent, so independent
/// subsystems can cache handles to the same series.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    loglinear: Mutex<BTreeMap<String, Arc<LogLinearHistogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

/// A point-in-time view of the registry's counters and log-linear
/// histograms, for per-interval deltas: the `report` binary snapshots the
/// process-global registry before each experiment so the numbers each
/// `BENCH_*.json` records are that experiment's own, not cumulative
/// across the binary's lifetime.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    counters: BTreeMap<String, u64>,
    loglinear: BTreeMap<String, LogLinearSnapshot>,
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The family a series belongs to: the name up to its label block.
fn family_of(name: &str) -> &str {
    match name.find('{') {
        Some(brace) => &name[..brace],
        None => name,
    }
}

/// The label block of a series (`planner="astar"`), braces stripped;
/// `None` for an unlabeled series (or an empty `{}` block).
fn labels_of(name: &str) -> Option<&str> {
    let start = name.find('{')? + 1;
    let end = name.rfind('}')?;
    let inner = name.get(start..end)?;
    (!inner.is_empty()).then_some(inner)
}

impl Registry {
    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Gets or creates the histogram `name` (rendered as a summary family).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Gets or creates the log-linear histogram `name` (rendered as a
    /// summary family with p50/p99/p999). A family must live in either
    /// the fixed-bucket or the log-linear map, never both.
    pub fn loglinear(&self, name: &str) -> Arc<LogLinearHistogram> {
        let mut map = self.loglinear.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Freezes the current counter values and log-linear bucket contents.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            loglinear: self
                .loglinear
                .lock()
                .unwrap()
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Counter increments since `baseline`, omitting series that did not
    /// move. Series created after the baseline report their full value.
    pub fn counters_since(&self, baseline: &RegistrySnapshot) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .filter_map(|(name, c)| {
                let before = baseline.counters.get(name).copied().unwrap_or(0);
                let delta = c.get().saturating_sub(before);
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect()
    }

    /// The log-linear histogram `name` restricted to samples recorded
    /// since `baseline` (the full series if it postdates the baseline);
    /// `None` when the series does not exist.
    pub fn loglinear_since(
        &self,
        name: &str,
        baseline: &RegistrySnapshot,
    ) -> Option<LogLinearSnapshot> {
        let now = self.loglinear.lock().unwrap().get(name)?.snapshot();
        match baseline.loglinear.get(name) {
            Some(then) => Some(now.since(then)),
            None => Some(now),
        }
    }

    /// Registers the `# HELP` text for a family (idempotent overwrite).
    pub fn set_help(&self, family: &str, help: &str) {
        self.help
            .lock()
            .unwrap()
            .insert(family.to_string(), help.to_string());
    }

    /// Current value of counter `name`, 0 if it was never created. For
    /// tests and post-run summaries; does not create the series.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Renders every registered series in Prometheus text format, families
    /// sorted by name, one `# HELP`/`# TYPE` header per family.
    pub fn render_prometheus(&self) -> String {
        // Group by family before rendering: raw map order interleaves
        // `foo{...}` ('{' sorts after '_') with a `foo_bar` family, and
        // Prometheus requires each family contiguous under one header.
        fn by_family<T>(map: &BTreeMap<String, Arc<T>>) -> BTreeMap<String, Vec<(String, Arc<T>)>> {
            let mut families: BTreeMap<String, Vec<(String, Arc<T>)>> = BTreeMap::new();
            for (name, metric) in map {
                families
                    .entry(family_of(name).to_string())
                    .or_default()
                    .push((name.clone(), Arc::clone(metric)));
            }
            families
        }

        let help = self.help.lock().unwrap();
        let mut out = String::with_capacity(2048);
        let header = |out: &mut String, family: &str, kind: &str| {
            let text = help.get(family).map(String::as_str).unwrap_or("(no help)");
            out.push_str(&format!("# HELP {family} {text}\n# TYPE {family} {kind}\n"));
        };

        for (family, series) in by_family(&self.counters.lock().unwrap()) {
            header(&mut out, &family, "counter");
            for (name, counter) in series {
                out.push_str(&format!("{name} {}\n", counter.get()));
            }
        }
        for (family, series) in by_family(&self.gauges.lock().unwrap()) {
            header(&mut out, &family, "gauge");
            for (name, gauge) in series {
                out.push_str(&format!("{name} {}\n", gauge.get()));
            }
        }
        for (family, series) in by_family(&self.histograms.lock().unwrap()) {
            header(&mut out, &family, "summary");
            for (name, histogram) in series {
                // A labeled series must keep one brace block per line:
                // `quantile` joins the series' own labels, and the
                // `_count`/`_sum` suffixes attach to the family name with
                // the labels following.
                let labels = labels_of(&name);
                for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                    let value = histogram.quantile(q);
                    match labels {
                        Some(l) => out.push_str(&format!(
                            "{family}{{{l},quantile=\"{label}\"}} {value:.6}\n"
                        )),
                        None => {
                            out.push_str(&format!("{family}{{quantile=\"{label}\"}} {value:.6}\n"))
                        }
                    }
                }
                let suffix = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
                out.push_str(&format!("{family}_count{suffix} {}\n", histogram.count()));
                out.push_str(&format!(
                    "{family}_sum{suffix} {:.6}\n",
                    histogram.sum_seconds()
                ));
            }
        }
        for (family, series) in by_family(&self.loglinear.lock().unwrap()) {
            header(&mut out, &family, "summary");
            for (name, histogram) in series {
                let snap = histogram.snapshot();
                let labels = labels_of(&name);
                // Tail-resolving quantiles: the whole point of the
                // log-linear layout is that p999 is meaningful.
                for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                    let value = snap.quantile(q);
                    match labels {
                        Some(l) => out.push_str(&format!(
                            "{family}{{{l},quantile=\"{label}\"}} {value:.6}\n"
                        )),
                        None => {
                            out.push_str(&format!("{family}{{quantile=\"{label}\"}} {value:.6}\n"))
                        }
                    }
                }
                let suffix = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
                out.push_str(&format!("{family}_count{suffix} {}\n", snap.count()));
                out.push_str(&format!("{family}_sum{suffix} {:.6}\n", snap.sum_seconds()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantiles_are_zero_not_nan() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            let v = h.quantile(q);
            assert_eq!(v, 0.0, "q={q}");
            assert!(!v.is_nan());
        }
        assert_eq!(h.mean_seconds(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantile_one_clamps_to_last_nonempty_bucket() {
        let h = Histogram::new();
        h.record(Duration::from_millis(5));
        h.record(Duration::from_millis(5));
        // Every quantile, including exactly 1.0, must report the 5 ms
        // bucket's bound — never run past it.
        let q1 = h.quantile(1.0);
        assert_eq!(q1, h.quantile(0.5));
        assert!((0.005..=0.008).contains(&q1), "{q1}");
        // Out-of-range and NaN q degrade gracefully.
        assert_eq!(h.quantile(7.5), q1);
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    fn overflow_only_histogram_reports_max_bound_at_q1() {
        let h = Histogram::new();
        h.record(Duration::from_secs(3600));
        let bound = *BUCKET_BOUNDS_US.last().unwrap() as f64 / 1e6;
        assert_eq!(h.quantile(1.0), bound);
        assert_eq!(h.quantile(0.5), bound);
    }

    #[test]
    fn quantiles_are_monotonic_and_bracket_samples() {
        let h = Histogram::new();
        for ms in [1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1000] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((0.02..=0.04).contains(&p50), "p50 {p50}");
        assert!((1.0..=1.6).contains(&p99), "p99 {p99}");
        assert_eq!(h.count(), 10);
        assert!(h.mean_seconds() > 0.0);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = Registry::default();
        let a = r.counter("test_total");
        let b = r.counter("test_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.counter_value("test_total"), 4);
        assert_eq!(r.counter_value("never_created_total"), 0);
        let g = r.gauge("test_gauge");
        g.set(2.5);
        assert_eq!(r.gauge("test_gauge").get(), 2.5);
    }

    #[test]
    fn render_groups_labelled_series_into_one_family() {
        let r = Registry::default();
        r.set_help("pool_tasks_total", "Tasks per lane.");
        r.counter("pool_tasks_total{lane=\"0\"}").add(5);
        r.counter("pool_tasks_total{lane=\"1\"}").add(7);
        r.counter("other_total").inc();
        r.histogram("route_seconds")
            .record(Duration::from_millis(3));
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE pool_tasks_total counter").count(),
            1,
            "{text}"
        );
        assert!(text.contains("# HELP pool_tasks_total Tasks per lane."));
        assert!(text.contains("pool_tasks_total{lane=\"0\"} 5"));
        assert!(text.contains("pool_tasks_total{lane=\"1\"} 7"));
        assert!(text.contains("# TYPE other_total counter"));
        assert!(text.contains("# TYPE route_seconds summary"));
        assert!(text.contains("route_seconds_count 1"));
        assert!(text.contains("route_seconds{quantile=\"0.99\"}"));
    }

    #[test]
    fn labeled_histogram_renders_one_brace_block_per_line() {
        let r = Registry::default();
        r.set_help("plan_seconds", "Search wall time.");
        r.histogram("plan_seconds{planner=\"astar\"}")
            .record(Duration::from_millis(5));
        r.histogram("plan_seconds{planner=\"dp\"}")
            .record(Duration::from_millis(7));
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE plan_seconds summary").count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("plan_seconds{planner=\"astar\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("plan_seconds{planner=\"dp\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("plan_seconds_count{planner=\"astar\"} 1"),
            "{text}"
        );
        assert!(text.contains("plan_seconds_sum{planner=\"dp\"} "), "{text}");
        // The malformed shapes Prometheus rejects must not appear anywhere:
        // a second brace block (`}{`) or a suffix after the labels (`}_`).
        assert!(!text.contains("}{"), "{text}");
        assert!(!text.contains("}_"), "{text}");
    }

    #[test]
    fn families_render_contiguously_despite_label_byte_order() {
        let r = Registry::default();
        r.counter("foo").inc();
        r.counter("foo{lane=\"0\"}").inc();
        // '_' (0x5F) sorts before '{' (0x7B), so in raw map order foo_bar
        // sits between foo and foo{...}; rendering must regroup them.
        r.counter("foo_bar").inc();
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE foo counter").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE foo_bar counter").count(), 1, "{text}");
        let labeled_foo = text.find("foo{lane=\"0\"} 1").expect("labeled foo series");
        let foo_bar_header = text.find("# HELP foo_bar").expect("foo_bar header");
        assert!(
            labeled_foo < foo_bar_header,
            "foo family must finish before foo_bar starts:\n{text}"
        );
    }

    #[test]
    fn global_registry_is_one_instance() {
        registry().counter("global_smoke_total").inc();
        assert!(registry().counter_value("global_smoke_total") >= 1);
    }

    #[test]
    fn loglinear_buckets_tile_the_axis_exactly() {
        // Every bucket's bound must map back to its own index, and the
        // next microsecond must map to the next bucket — no gaps, no
        // overlaps, anywhere on the axis.
        for i in 0..LL_BUCKETS {
            let bound = ll_bound_us(i);
            assert_eq!(ll_index(bound), Some(i), "bound of bucket {i}");
            let next = ll_index(bound + 1);
            if i + 1 < LL_BUCKETS {
                assert_eq!(next, Some(i + 1), "after bound of bucket {i}");
            } else {
                assert_eq!(next, None, "past the last octave");
            }
        }
        assert_eq!(ll_index(0), Some(0));
        assert_eq!(ll_index(u64::MAX), None);
    }

    #[test]
    fn loglinear_relative_error_is_under_one_percent() {
        // For any sample ≥ 128 µs the reported bound overshoots the true
        // value by at most one sub-bucket width = value·2^-7.
        for us in [150u64, 1_000, 33_333, 1_048_577, 999_999_999, 1 << 39] {
            let h = LogLinearHistogram::new();
            h.record(Duration::from_micros(us));
            let reported = h.quantile(0.5) * 1e6;
            let err = (reported - us as f64) / us as f64;
            assert!((0.0..=1.0 / 128.0).contains(&err), "us={us} err={err}");
        }
    }

    #[test]
    fn loglinear_matches_fixed_histogram_edge_contract() {
        let h = LogLinearHistogram::new();
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0.0, "empty, q={q}");
        }
        h.record(Duration::from_millis(5));
        h.record(Duration::from_millis(5));
        assert_eq!(h.quantile(1.0), h.quantile(0.5), "q=1 clamps");
        assert_eq!(h.quantile(7.5), h.quantile(1.0));
        // Overflow-only: the largest finite bound, never infinity.
        let over = LogLinearHistogram::new();
        over.record(Duration::from_secs(20_000_000));
        assert_eq!(over.quantile(0.5), ll_bound_us(LL_BUCKETS - 1) as f64 / 1e6);
        assert_eq!(over.count(), 1);
    }

    #[test]
    fn loglinear_resolves_tails_the_geometric_histogram_cannot() {
        let coarse = Histogram::new();
        let fine = LogLinearHistogram::new();
        // 99 fast samples and one 1.45× outlier inside a single geometric
        // bucket span: p50 and p999 must differ in the fine histogram
        // (rank at q=0.999 over 100 samples is 100 — the outlier).
        for _ in 0..99 {
            coarse.record(Duration::from_micros(10_100));
            fine.record(Duration::from_micros(10_100));
        }
        coarse.record(Duration::from_micros(14_600));
        fine.record(Duration::from_micros(14_600));
        assert_eq!(coarse.quantile(0.5), coarse.quantile(0.999));
        assert!(fine.quantile(0.999) > fine.quantile(0.5) * 1.4);
    }

    #[test]
    fn snapshot_since_isolates_an_interval() {
        let r = Registry::default();
        r.counter("exp_total").add(10);
        let h = r.loglinear("exp_seconds");
        h.record(Duration::from_millis(1));
        let baseline = r.snapshot();

        r.counter("exp_total").add(5);
        r.counter("late_total").add(2);
        h.record(Duration::from_millis(100));
        h.record(Duration::from_millis(100));

        let deltas = r.counters_since(&baseline);
        assert_eq!(deltas.get("exp_total"), Some(&5));
        assert_eq!(deltas.get("late_total"), Some(&2), "post-baseline series");
        assert_eq!(deltas.len(), 2, "unmoved series omitted: {deltas:?}");

        let interval = r.loglinear_since("exp_seconds", &baseline).unwrap();
        assert_eq!(interval.count(), 2);
        // The 1 ms pre-baseline sample is subtracted out: the interval's
        // p50 sits at 100 ms, not 1 ms.
        assert!((0.09..0.11).contains(&interval.quantile(0.5)));
        assert!(r.loglinear_since("missing", &baseline).is_none());
        // The live histogram still holds all three samples.
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn loglinear_renders_p999_summary_lines() {
        let r = Registry::default();
        r.set_help("replan_seconds", "Replan latency.");
        r.loglinear("replan_seconds{phase=\"replan\"}")
            .record(Duration::from_millis(3));
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE replan_seconds summary"), "{text}");
        assert!(
            text.contains("replan_seconds{phase=\"replan\",quantile=\"0.999\"}"),
            "{text}"
        );
        assert!(text.contains("replan_seconds_count{phase=\"replan\"} 1"));
        assert!(!text.contains("}{"), "{text}");
        assert!(!text.contains("}_"), "{text}");
    }
}
