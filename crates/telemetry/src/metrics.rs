//! Lock-free metrics behind a process-global registry.
//!
//! The [`Histogram`] here is the service's former
//! `klotski-service/src/metrics.rs` histogram, relocated so the service,
//! the CLI, and instrumented library crates share one implementation; its
//! bucket bounds and quantile semantics are unchanged (with the empty /
//! `q = 1.0` edge cases pinned down by tests), so the service's Prometheus
//! rendering stays byte-compatible.
//!
//! Instrumented hot paths fetch their `Arc` handles once at construction
//! (`registry().counter("...")`) and afterwards pay one relaxed atomic op
//! per record — the registry's mutexed map is only touched at setup and at
//! render time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Upper bounds of the latency buckets, in microseconds. Geometric series:
/// `bound[i] = 100 · (1.468)^i`, 32 buckets, last bound ≈ 2.6 min; anything
/// slower lands in the implicit overflow bucket.
const BUCKET_BOUNDS_US: [u64; 32] = [
    100, 147, 216, 317, 465, 683, 1_002, 1_472, 2_161, 3_172, 4_657, 6_837, 10_036, 14_733, 21_628,
    31_750, 46_609, 68_422, 100_444, 147_452, 216_460, 317_764, 466_478, 684_789, 1_005_270,
    1_475_737, 2_166_382, 3_180_249, 4_668_606, 6_853_514, 10_060_959, 14_769_488,
];

/// A lock-free fixed-bucket latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len()],
    /// Samples beyond the last bound.
    overflow: AtomicU64,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        let us = sample.as_micros().min(u128::from(u64::MAX)) as u64;
        match BUCKET_BOUNDS_US.iter().position(|&b| us <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Times `f` and records its duration.
    pub fn observe<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Mean sample, seconds. 0 with no samples (never NaN).
    pub fn mean_seconds(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_seconds() / n as f64
    }

    /// Estimated `q`-quantile in seconds (upper bound of the bucket holding
    /// the quantile sample). Edge cases are explicit: an empty histogram
    /// returns 0 (never NaN), a NaN `q` is treated as 0, `q` is clamped to
    /// `[0, 1]`, and `q = 1.0` clamps to the last non-empty bucket — when
    /// only the overflow bucket is occupied that is the largest finite
    /// bound, the tightest claim the histogram can make.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US[i] as f64 / 1e6;
            }
        }
        // Quantile sample sits in the overflow bucket: report the max bound.
        *BUCKET_BOUNDS_US.last().unwrap() as f64 / 1e6
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The process-global metric registry: names → shared metric handles.
///
/// Names may carry a Prometheus label suffix (`klotski_pool_tasks_total{lane="0"}`);
/// series sharing the text before `{` form one family and render under one
/// `# HELP` / `# TYPE` header. Get-or-create is idempotent, so independent
/// subsystems can cache handles to the same series.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The family a series belongs to: the name up to its label block.
fn family_of(name: &str) -> &str {
    match name.find('{') {
        Some(brace) => &name[..brace],
        None => name,
    }
}

/// The label block of a series (`planner="astar"`), braces stripped;
/// `None` for an unlabeled series (or an empty `{}` block).
fn labels_of(name: &str) -> Option<&str> {
    let start = name.find('{')? + 1;
    let end = name.rfind('}')?;
    let inner = name.get(start..end)?;
    (!inner.is_empty()).then_some(inner)
}

impl Registry {
    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Gets or creates the histogram `name` (rendered as a summary family).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Registers the `# HELP` text for a family (idempotent overwrite).
    pub fn set_help(&self, family: &str, help: &str) {
        self.help
            .lock()
            .unwrap()
            .insert(family.to_string(), help.to_string());
    }

    /// Current value of counter `name`, 0 if it was never created. For
    /// tests and post-run summaries; does not create the series.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Renders every registered series in Prometheus text format, families
    /// sorted by name, one `# HELP`/`# TYPE` header per family.
    pub fn render_prometheus(&self) -> String {
        // Group by family before rendering: raw map order interleaves
        // `foo{...}` ('{' sorts after '_') with a `foo_bar` family, and
        // Prometheus requires each family contiguous under one header.
        fn by_family<T>(map: &BTreeMap<String, Arc<T>>) -> BTreeMap<String, Vec<(String, Arc<T>)>> {
            let mut families: BTreeMap<String, Vec<(String, Arc<T>)>> = BTreeMap::new();
            for (name, metric) in map {
                families
                    .entry(family_of(name).to_string())
                    .or_default()
                    .push((name.clone(), Arc::clone(metric)));
            }
            families
        }

        let help = self.help.lock().unwrap();
        let mut out = String::with_capacity(2048);
        let header = |out: &mut String, family: &str, kind: &str| {
            let text = help.get(family).map(String::as_str).unwrap_or("(no help)");
            out.push_str(&format!("# HELP {family} {text}\n# TYPE {family} {kind}\n"));
        };

        for (family, series) in by_family(&self.counters.lock().unwrap()) {
            header(&mut out, &family, "counter");
            for (name, counter) in series {
                out.push_str(&format!("{name} {}\n", counter.get()));
            }
        }
        for (family, series) in by_family(&self.gauges.lock().unwrap()) {
            header(&mut out, &family, "gauge");
            for (name, gauge) in series {
                out.push_str(&format!("{name} {}\n", gauge.get()));
            }
        }
        for (family, series) in by_family(&self.histograms.lock().unwrap()) {
            header(&mut out, &family, "summary");
            for (name, histogram) in series {
                // A labeled series must keep one brace block per line:
                // `quantile` joins the series' own labels, and the
                // `_count`/`_sum` suffixes attach to the family name with
                // the labels following.
                let labels = labels_of(&name);
                for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                    let value = histogram.quantile(q);
                    match labels {
                        Some(l) => out.push_str(&format!(
                            "{family}{{{l},quantile=\"{label}\"}} {value:.6}\n"
                        )),
                        None => {
                            out.push_str(&format!("{family}{{quantile=\"{label}\"}} {value:.6}\n"))
                        }
                    }
                }
                let suffix = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
                out.push_str(&format!("{family}_count{suffix} {}\n", histogram.count()));
                out.push_str(&format!(
                    "{family}_sum{suffix} {:.6}\n",
                    histogram.sum_seconds()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantiles_are_zero_not_nan() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            let v = h.quantile(q);
            assert_eq!(v, 0.0, "q={q}");
            assert!(!v.is_nan());
        }
        assert_eq!(h.mean_seconds(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantile_one_clamps_to_last_nonempty_bucket() {
        let h = Histogram::new();
        h.record(Duration::from_millis(5));
        h.record(Duration::from_millis(5));
        // Every quantile, including exactly 1.0, must report the 5 ms
        // bucket's bound — never run past it.
        let q1 = h.quantile(1.0);
        assert_eq!(q1, h.quantile(0.5));
        assert!((0.005..=0.008).contains(&q1), "{q1}");
        // Out-of-range and NaN q degrade gracefully.
        assert_eq!(h.quantile(7.5), q1);
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    fn overflow_only_histogram_reports_max_bound_at_q1() {
        let h = Histogram::new();
        h.record(Duration::from_secs(3600));
        let bound = *BUCKET_BOUNDS_US.last().unwrap() as f64 / 1e6;
        assert_eq!(h.quantile(1.0), bound);
        assert_eq!(h.quantile(0.5), bound);
    }

    #[test]
    fn quantiles_are_monotonic_and_bracket_samples() {
        let h = Histogram::new();
        for ms in [1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1000] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((0.02..=0.04).contains(&p50), "p50 {p50}");
        assert!((1.0..=1.6).contains(&p99), "p99 {p99}");
        assert_eq!(h.count(), 10);
        assert!(h.mean_seconds() > 0.0);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = Registry::default();
        let a = r.counter("test_total");
        let b = r.counter("test_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.counter_value("test_total"), 4);
        assert_eq!(r.counter_value("never_created_total"), 0);
        let g = r.gauge("test_gauge");
        g.set(2.5);
        assert_eq!(r.gauge("test_gauge").get(), 2.5);
    }

    #[test]
    fn render_groups_labelled_series_into_one_family() {
        let r = Registry::default();
        r.set_help("pool_tasks_total", "Tasks per lane.");
        r.counter("pool_tasks_total{lane=\"0\"}").add(5);
        r.counter("pool_tasks_total{lane=\"1\"}").add(7);
        r.counter("other_total").inc();
        r.histogram("route_seconds")
            .record(Duration::from_millis(3));
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE pool_tasks_total counter").count(),
            1,
            "{text}"
        );
        assert!(text.contains("# HELP pool_tasks_total Tasks per lane."));
        assert!(text.contains("pool_tasks_total{lane=\"0\"} 5"));
        assert!(text.contains("pool_tasks_total{lane=\"1\"} 7"));
        assert!(text.contains("# TYPE other_total counter"));
        assert!(text.contains("# TYPE route_seconds summary"));
        assert!(text.contains("route_seconds_count 1"));
        assert!(text.contains("route_seconds{quantile=\"0.99\"}"));
    }

    #[test]
    fn labeled_histogram_renders_one_brace_block_per_line() {
        let r = Registry::default();
        r.set_help("plan_seconds", "Search wall time.");
        r.histogram("plan_seconds{planner=\"astar\"}")
            .record(Duration::from_millis(5));
        r.histogram("plan_seconds{planner=\"dp\"}")
            .record(Duration::from_millis(7));
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE plan_seconds summary").count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("plan_seconds{planner=\"astar\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("plan_seconds{planner=\"dp\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("plan_seconds_count{planner=\"astar\"} 1"),
            "{text}"
        );
        assert!(text.contains("plan_seconds_sum{planner=\"dp\"} "), "{text}");
        // The malformed shapes Prometheus rejects must not appear anywhere:
        // a second brace block (`}{`) or a suffix after the labels (`}_`).
        assert!(!text.contains("}{"), "{text}");
        assert!(!text.contains("}_"), "{text}");
    }

    #[test]
    fn families_render_contiguously_despite_label_byte_order() {
        let r = Registry::default();
        r.counter("foo").inc();
        r.counter("foo{lane=\"0\"}").inc();
        // '_' (0x5F) sorts before '{' (0x7B), so in raw map order foo_bar
        // sits between foo and foo{...}; rendering must regroup them.
        r.counter("foo_bar").inc();
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE foo counter").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE foo_bar counter").count(), 1, "{text}");
        let labeled_foo = text.find("foo{lane=\"0\"} 1").expect("labeled foo series");
        let foo_bar_header = text.find("# HELP foo_bar").expect("foo_bar header");
        assert!(
            labeled_foo < foo_bar_header,
            "foo family must finish before foo_bar starts:\n{text}"
        );
    }

    #[test]
    fn global_registry_is_one_instance() {
        registry().counter("global_smoke_total").inc();
        assert!(registry().counter_value("global_smoke_total") >= 1);
    }
}
