//! Hierarchical spans with a thread-local span stack.
//!
//! A [`SpanGuard`] is opened with [`span!`](crate::span!) (or
//! [`SpanGuard::enter`]), lives on the stack, and emits one JSONL line
//! when dropped — children therefore appear in the trace *before* their
//! parents, which is why the schema validator resolves parent ids in a
//! second pass. Parentage follows the per-thread span stack; work crossing
//! threads (pool tasks) propagates it explicitly via
//! [`SpanGuard::enter_with_parent`] and [`current_span_id`].
//!
//! Timestamps are microseconds since the process's first telemetry use
//! (a monotonic [`Instant`] epoch), so subtraction inside one trace is
//! always meaningful.

use crate::sink;
use crate::FieldValue;
use serde::{Map, Value};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Span ids start at 1; 0 means "no span" (a root's parent).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process's monotonic telemetry epoch.
pub fn epoch_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Id of the innermost open span on this thread (0 when none). Capture it
/// before fanning work out to a pool, then open task spans with
/// [`SpanGuard::enter_with_parent`] so the hierarchy survives the thread
/// hop.
pub fn current_span_id() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// An open span. Dropping it closes the span and emits its JSONL line.
/// Deliberately `!Send`: a guard must close on the thread that opened it,
/// or the thread-local stack would corrupt.
pub struct SpanGuard {
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    fields: Vec<(String, FieldValue)>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens a span as a child of this thread's innermost open span.
    /// Returns an inert guard when no sink is installed.
    pub fn enter(name: &'static str) -> Self {
        Self::enter_with_parent(name, current_span_id())
    }

    /// Opens a span under an explicit parent id — the cross-thread variant
    /// for pool tasks (pass 0 for a root).
    pub fn enter_with_parent(name: &'static str, parent: u64) -> Self {
        if !crate::emit_enabled() {
            return Self::disabled();
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Self {
            id,
            parent,
            name,
            start_us: epoch_us(),
            fields: Vec::new(),
            _not_send: PhantomData,
        }
    }

    /// An inert guard: no id, no emission, fields ignored.
    pub fn disabled() -> Self {
        Self {
            id: 0,
            parent: 0,
            name: "",
            start_us: 0,
            fields: Vec::new(),
            _not_send: PhantomData,
        }
    }

    /// This span's id (0 when disabled). Hand it to worker tasks as their
    /// `enter_with_parent` parent.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a field to be emitted when the span closes. Later values
    /// win for repeated keys (resolved at emission).
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) -> &mut Self {
        if self.id != 0 {
            self.fields.push((key.to_string(), value.into()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order, so this is almost always a pop;
            // the scan tolerates a guard outliving its children's thread.
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let dur_us = epoch_us().saturating_sub(self.start_us);
        let mut obj = Map::new();
        obj.insert("type".into(), Value::String("span".into()));
        obj.insert("name".into(), Value::String(self.name.into()));
        obj.insert("id".into(), Value::Number(self.id as f64));
        obj.insert("parent".into(), Value::Number(self.parent as f64));
        obj.insert("thread".into(), Value::String(thread_label()));
        obj.insert("start_us".into(), Value::Number(self.start_us as f64));
        obj.insert("dur_us".into(), Value::Number(dur_us as f64));
        obj.insert("fields".into(), fields_json(&self.fields));
        emit_object(obj);
    }
}

/// Emits one event line under the current span. Prefer the
/// [`log_event!`](crate::log_event!) macro, which skips field construction
/// when tracing is disabled.
pub fn log_event_fields(name: &str, fields: Vec<(String, FieldValue)>) {
    if !crate::emit_enabled() {
        return;
    }
    let mut obj = Map::new();
    obj.insert("type".into(), Value::String("event".into()));
    obj.insert("name".into(), Value::String(name.into()));
    obj.insert("span".into(), Value::Number(current_span_id() as f64));
    obj.insert("ts_us".into(), Value::Number(epoch_us() as f64));
    obj.insert("fields".into(), fields_json(&fields));
    emit_object(obj);
}

fn fields_json(fields: &[(String, FieldValue)]) -> Value {
    let mut map = Map::new();
    for (k, v) in fields {
        map.insert(k.clone(), v.to_json());
    }
    Value::Object(map)
}

fn emit_object(obj: Map) {
    if let Ok(line) = serde_json::to_string(&Value::Object(obj)) {
        sink::emit(&line);
    }
}

fn thread_label() -> String {
    let current = std::thread::current();
    match current.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", current.id()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;
    use std::sync::Arc;

    fn with_ring(f: impl FnOnce(&RingSink)) {
        // Sink-installing tests share the process-global slot (and the
        // bus tests flip the emit_enabled gate); serialize them.
        let _guard = crate::test_support::sink_lock();
        let ring = Arc::new(RingSink::new(1024));
        let prev = crate::swap(Some(ring.clone() as Arc<dyn crate::Sink>));
        f(&ring);
        crate::swap(prev);
    }

    #[test]
    fn disabled_guard_emits_nothing() {
        let _guard = crate::test_support::sink_lock();
        let prev = crate::swap(None);
        assert!(!crate::enabled());
        {
            let mut s = SpanGuard::enter("quiet");
            s.field("k", 1u64);
            assert_eq!(s.id(), 0);
        }
        assert_eq!(current_span_id(), 0);
        crate::swap(prev);
    }

    #[test]
    fn nested_spans_nest_ids_and_emit_child_first() {
        use crate::Record;
        with_ring(|ring| {
            let outer_id;
            let inner_id;
            {
                let outer = SpanGuard::enter("outer");
                outer_id = outer.id();
                assert_eq!(current_span_id(), outer_id);
                {
                    let mut inner = SpanGuard::enter("inner");
                    inner.field("n", 2u64);
                    inner_id = inner.id();
                    assert_eq!(current_span_id(), inner_id);
                }
                assert_eq!(current_span_id(), outer_id);
            }
            assert_eq!(current_span_id(), 0);
            let lines = ring.lines();
            assert_eq!(lines.len(), 2);
            let first = crate::parse_line(&lines[0]).unwrap();
            let second = crate::parse_line(&lines[1]).unwrap();
            match (first, second) {
                (
                    Record::Span {
                        name: n1,
                        id: i1,
                        parent: p1,
                        ..
                    },
                    Record::Span {
                        name: n2,
                        id: i2,
                        parent: p2,
                        ..
                    },
                ) => {
                    assert_eq!((n1.as_str(), i1, p1), ("inner", inner_id, outer_id));
                    assert_eq!((n2.as_str(), i2, p2), ("outer", outer_id, 0));
                }
                other => panic!("expected two spans, got {other:?}"),
            }
        });
    }

    #[test]
    fn events_attach_to_the_current_span() {
        with_ring(|ring| {
            {
                let root = SpanGuard::enter("holder");
                crate::log_event!("ping", "ok" = true, "n" = 7u64);
                let _ = root;
            }
            let lines = ring.lines();
            assert_eq!(lines.len(), 2, "{lines:?}");
            match crate::parse_line(&lines[0]).unwrap() {
                crate::Record::Event {
                    name, span, fields, ..
                } => {
                    assert_eq!(name, "ping");
                    assert_ne!(span, 0, "event must attach to the open span");
                    assert_eq!(fields.get("ok").and_then(|v| v.as_bool()), Some(true));
                    assert_eq!(fields.get("n").and_then(|v| v.as_f64()), Some(7.0));
                }
                other => panic!("expected event, got {other:?}"),
            }
        });
    }

    #[test]
    fn trace_round_trips_through_validator() {
        with_ring(|ring| {
            {
                let _a = crate::span!("root.a", "k" = "v");
                let _b = crate::span!("child.b");
                crate::log_event!("tick", "i" = 1u64);
            }
            let text = ring.lines().join("\n");
            let summary = crate::validate_trace(&text).unwrap();
            assert_eq!(summary.spans, 2);
            assert_eq!(summary.events, 1);
            assert_eq!(summary.roots, 1);
        });
    }
}
