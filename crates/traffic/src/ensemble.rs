//! Traffic ensembles for robust satisfiability (METTEOR/COUDER-style).
//!
//! The paper checks every intermediate topology against a *single* forecast
//! matrix, but §7.2's deployment experience (the warm-storage backup surge)
//! and the topology-engineering literature both argue a migration should
//! stay safe under a *set* of plausible traffic matrices. An ensemble is
//! that set: the base forecast at index 0 plus derived variants — EWMA
//! forecast levels at different smoothing factors and seeded surge
//! injections — deduplicated by content digest. A state is safe iff it is
//! safe under **all** matrices; checkers evaluate matrices in index order
//! and short-circuit on the first failure, so the failing index is itself a
//! deterministic function of the state.
//!
//! Every variant is derived by *scaling* the base matrix (globally or per
//! class), so all matrices share the base's exact `(src, dst, class)`
//! sequence. Routing structure (BFS distance labels, splitting DAGs) is
//! demand-independent; identical endpoints mean reachability is
//! matrix-independent too, and only the load sweep differs per matrix.

use crate::demand::{DemandClass, DemandMatrix};
use crate::forecast::{EwmaForecaster, Forecaster};
use crate::history::{HistoryConfig, TrafficHistory};
use crate::surge::SurgeEvent;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper bound on ensemble size; checking cost is linear in K per failing
/// state, and anything past this is a spec typo, not a workload.
pub const MAX_ENSEMBLE: usize = 64;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// splitmix64: the seed expander behind the variant RNG. Small, public
/// domain, and stable across platforms — ensemble realization must be
/// byte-for-byte reproducible from the spec's explicit seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Content digest of a demand matrix: FNV-1a over every demand's
/// endpoints, class, and exact rate bits. Two matrices with equal digests
/// route identically, which is what ensemble deduplication cares about.
pub fn matrix_digest(matrix: &DemandMatrix) -> u64 {
    let mut h = FNV_OFFSET;
    for d in matrix.iter() {
        h = fnv1a(h, &d.src.0.to_le_bytes());
        h = fnv1a(h, &d.dst.0.to_le_bytes());
        h = fnv1a(h, &[class_tag(d.class)]);
        h = fnv1a(h, &d.gbps.to_bits().to_le_bytes());
    }
    h
}

fn class_tag(class: DemandClass) -> u8 {
    match class {
        DemandClass::RswToEbb => 0,
        DemandClass::EbbToRsw => 1,
        DemandClass::RswToRsw => 2,
    }
}

/// Ensemble construction/validation failures. These surface as 4xx errors
/// in the planning service and as CLI usage errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EnsembleError {
    /// `k == 0`: an ensemble must contain at least the base matrix.
    Empty,
    /// `k` exceeds [`MAX_ENSEMBLE`].
    TooLarge { k: usize, max: usize },
    /// An EWMA smoothing factor outside `(0, 1]` (or non-finite).
    BadAlpha(f64),
    /// A surge factor below 1.0 (or non-finite).
    BadFactor(f64),
    /// A matrix whose `(src, dst, class)` sequence differs from the base.
    DimensionMismatch { matrix: usize, reason: String },
    /// A non-finite or negative rate entry.
    InvalidRate {
        matrix: usize,
        index: usize,
        gbps: f64,
    },
    /// A demand endpoint outside the topology's switch range.
    EndpointOutOfRange {
        matrix: usize,
        switch: u32,
        num_switches: usize,
    },
    /// An unparseable `--ensemble` spec string.
    Malformed(String),
}

impl fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsembleError::Empty => {
                write!(f, "ensemble must contain at least one matrix (k >= 1)")
            }
            EnsembleError::TooLarge { k, max } => {
                write!(f, "ensemble size {k} exceeds the maximum of {max}")
            }
            EnsembleError::BadAlpha(a) => {
                write!(f, "EWMA smoothing factor {a} outside (0, 1]")
            }
            EnsembleError::BadFactor(x) => {
                write!(f, "surge factor {x} must be finite and >= 1")
            }
            EnsembleError::DimensionMismatch { matrix, reason } => {
                write!(
                    f,
                    "ensemble matrix {matrix} does not match the base demand set: {reason}"
                )
            }
            EnsembleError::InvalidRate {
                matrix,
                index,
                gbps,
            } => {
                write!(
                    f,
                    "ensemble matrix {matrix} demand {index} has invalid rate {gbps}"
                )
            }
            EnsembleError::EndpointOutOfRange {
                matrix,
                switch,
                num_switches,
            } => {
                write!(
                    f,
                    "ensemble matrix {matrix} references switch {switch} outside the \
                     topology's {num_switches} switches"
                )
            }
            EnsembleError::Malformed(why) => write!(f, "malformed ensemble spec: {why}"),
        }
    }
}

impl std::error::Error for EnsembleError {}

fn default_ewma_alphas() -> Vec<f64> {
    vec![0.35, 0.65]
}

fn default_surge_factor() -> f64 {
    1.3
}

/// Declarative recipe for deriving a [`TrafficEnsemble`] from a calibrated
/// base matrix. This is the wire/JSON form carried by planner options and
/// controller scenarios; realization is a pure function of (spec, base), so
/// the same spec reproduces the same ensemble byte-for-byte on any machine.
///
/// `seed` is **required** — surge variants are seeded from it explicitly
/// rather than from any ambient default, which is what makes ensemble runs
/// reproducible across machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleSpec {
    /// Total number of matrices K, including the base forecast (K >= 1).
    pub k: usize,
    /// Explicit RNG seed for surge variants. No default: reproducibility
    /// requires the seed to travel with the spec.
    pub seed: u64,
    /// EWMA smoothing ladder; variant i < `ewma_alphas.len()` scales the
    /// base by the EWMA level at `ewma_alphas[i]`.
    #[serde(default = "default_ewma_alphas")]
    pub ewma_alphas: Vec<f64>,
    /// Upper bound of the seeded surge multiplier range `[1, surge_factor]`.
    #[serde(default = "default_surge_factor")]
    pub surge_factor: f64,
}

impl EnsembleSpec {
    /// A spec with K matrices and the default EWMA ladder / surge range.
    pub fn with_k(k: usize, seed: u64) -> Self {
        Self {
            k,
            seed,
            ewma_alphas: default_ewma_alphas(),
            surge_factor: default_surge_factor(),
        }
    }

    /// Parses the CLI shorthand `K@SEED` (e.g. `4@42`).
    pub fn parse(s: &str) -> Result<Self, EnsembleError> {
        let (k_str, seed_str) = s
            .split_once('@')
            .ok_or_else(|| EnsembleError::Malformed(format!("expected K@SEED, got {s:?}")))?;
        let k = k_str.trim().parse::<usize>().map_err(|_| {
            EnsembleError::Malformed(format!("K must be an integer, got {k_str:?}"))
        })?;
        let seed = seed_str.trim().parse::<u64>().map_err(|_| {
            EnsembleError::Malformed(format!("SEED must be a u64, got {seed_str:?}"))
        })?;
        let spec = Self::with_k(k, seed);
        spec.validate()?;
        Ok(spec)
    }

    /// Validates spec fields (not the realized matrices).
    pub fn validate(&self) -> Result<(), EnsembleError> {
        if self.k == 0 {
            return Err(EnsembleError::Empty);
        }
        if self.k > MAX_ENSEMBLE {
            return Err(EnsembleError::TooLarge {
                k: self.k,
                max: MAX_ENSEMBLE,
            });
        }
        for &a in &self.ewma_alphas {
            if !(a.is_finite() && a > 0.0 && a <= 1.0) {
                return Err(EnsembleError::BadAlpha(a));
            }
        }
        if !(self.surge_factor.is_finite() && self.surge_factor >= 1.0) {
            return Err(EnsembleError::BadFactor(self.surge_factor));
        }
        Ok(())
    }

    /// Realizes the ensemble against a calibrated base matrix.
    ///
    /// Variant `i` (0-based among the K−1 non-base slots) is an EWMA level
    /// variant while `i < ewma_alphas.len()`, then a seeded surge variant.
    /// All variants are deduplicated by digest, so the realized ensemble may
    /// hold fewer than K matrices; each drop is recorded as a warning.
    pub fn realize(&self, base: &DemandMatrix) -> Result<TrafficEnsemble, EnsembleError> {
        self.validate()?;
        let mut ensemble = TrafficEnsemble::new(base.clone())?;
        // One shared synthetic history per realization: equal alphas then
        // yield equal levels, which the digest dedupe collapses (with a
        // warning) instead of silently double-checking the same matrix.
        let history = TrafficHistory::synthesize(&HistoryConfig {
            seed: self.seed,
            ..HistoryConfig::default()
        });
        let latest = history.latest();
        let mut rng = self.seed;
        for i in 0..self.k - 1 {
            if let Some(&alpha) = self.ewma_alphas.get(i) {
                let level = EwmaForecaster { alpha }.forecast(&history, 1);
                let ratio = if latest > 0.0 { level / latest } else { 1.0 };
                if !(ratio.is_finite() && ratio >= 0.0) {
                    return Err(EnsembleError::Malformed(format!(
                        "EWMA level ratio {ratio} for alpha {alpha} is not usable"
                    )));
                }
                ensemble.push_variant(format!("ewma[a={alpha}]"), base.scaled(ratio))?;
            } else {
                let pick = splitmix64(&mut rng);
                let frac = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                let class = match pick % 4 {
                    0 => None,
                    r => Some(DemandClass::ALL[(r - 1) as usize]),
                };
                let factor = 1.0 + (self.surge_factor - 1.0) * frac;
                let surge = SurgeEvent {
                    from_step: 0,
                    until_step: 1,
                    factor,
                    class,
                };
                let label = match class {
                    None => format!("surge[all x{factor:.4}]"),
                    Some(c) => format!("surge[{c:?} x{factor:.4}]"),
                };
                ensemble.push_variant(label, surge.apply(base, 0))?;
            }
        }
        Ok(ensemble)
    }
}

/// A realized set of traffic matrices sharing the base's demand endpoints.
/// Index 0 is always the base forecast; checkers evaluate in index order.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficEnsemble {
    matrices: Vec<DemandMatrix>,
    labels: Vec<String>,
    digests: Vec<u64>,
    warnings: Vec<String>,
}

impl TrafficEnsemble {
    /// Starts an ensemble from its base matrix (index 0).
    pub fn new(base: DemandMatrix) -> Result<Self, EnsembleError> {
        validate_rates(&base, 0)?;
        let digest = matrix_digest(&base);
        Ok(Self {
            matrices: vec![base],
            labels: vec!["base".to_string()],
            digests: vec![digest],
            warnings: Vec::new(),
        })
    }

    /// Appends a variant. Returns `Ok(false)` (and records a warning) when
    /// the matrix duplicates an existing member by digest; errors when its
    /// demand dimensions diverge from the base or a rate is invalid.
    pub fn push_variant(
        &mut self,
        label: impl Into<String>,
        matrix: DemandMatrix,
    ) -> Result<bool, EnsembleError> {
        let label = label.into();
        let index = self.matrices.len();
        validate_rates(&matrix, index)?;
        let base = &self.matrices[0];
        if matrix.len() != base.len() {
            return Err(EnsembleError::DimensionMismatch {
                matrix: index,
                reason: format!("{} demands, base has {}", matrix.len(), base.len()),
            });
        }
        for (j, (d, b)) in matrix.iter().zip(base.iter()).enumerate() {
            if d.src != b.src || d.dst != b.dst || d.class != b.class {
                return Err(EnsembleError::DimensionMismatch {
                    matrix: index,
                    reason: format!(
                        "demand {j} is {:?}->{:?} ({:?}), base has {:?}->{:?} ({:?})",
                        d.src, d.dst, d.class, b.src, b.dst, b.class
                    ),
                });
            }
        }
        let digest = matrix_digest(&matrix);
        if let Some(dup) = self.digests.iter().position(|&d| d == digest) {
            self.warnings.push(format!(
                "ensemble variant {label:?} duplicates matrix {dup} ({:?}); deduped",
                self.labels[dup]
            ));
            return Ok(false);
        }
        self.matrices.push(matrix);
        self.labels.push(label);
        self.digests.push(digest);
        Ok(true)
    }

    /// Checks every endpoint against the topology's switch count.
    pub fn validate_against(&self, num_switches: usize) -> Result<(), EnsembleError> {
        for (i, m) in self.matrices.iter().enumerate() {
            for d in m.iter() {
                for sw in [d.src, d.dst] {
                    if sw.index() >= num_switches {
                        return Err(EnsembleError::EndpointOutOfRange {
                            matrix: i,
                            switch: sw.0,
                            num_switches,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of distinct matrices (K after dedupe).
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// Never true: an ensemble always holds the base.
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// The base forecast matrix (index 0).
    pub fn base(&self) -> &DemandMatrix {
        &self.matrices[0]
    }

    /// All matrices, base first.
    pub fn matrices(&self) -> &[DemandMatrix] {
        &self.matrices
    }

    /// The non-base variants (indices 1..K).
    pub fn extras(&self) -> &[DemandMatrix] {
        &self.matrices[1..]
    }

    /// Human-readable labels, aligned with [`matrices`](Self::matrices).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Per-matrix content digests.
    pub fn digests(&self) -> &[u64] {
        &self.digests
    }

    /// Dedupe warnings accumulated during construction.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Combined digest over all member digests (order-sensitive).
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for d in &self.digests {
            h = fnv1a(h, &d.to_le_bytes());
        }
        h
    }
}

fn validate_rates(matrix: &DemandMatrix, index: usize) -> Result<(), EnsembleError> {
    for (j, d) in matrix.iter().enumerate() {
        if !(d.gbps.is_finite() && d.gbps >= 0.0) {
            return Err(EnsembleError::InvalidRate {
                matrix: index,
                index: j,
                gbps: d.gbps,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Demand;
    use klotski_topology::SwitchId;

    fn base() -> DemandMatrix {
        [
            Demand {
                src: SwitchId(0),
                dst: SwitchId(1),
                gbps: 10.0,
                class: DemandClass::RswToEbb,
            },
            Demand {
                src: SwitchId(2),
                dst: SwitchId(1),
                gbps: 20.0,
                class: DemandClass::RswToRsw,
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn k_zero_is_rejected() {
        let spec = EnsembleSpec::with_k(0, 7);
        assert_eq!(spec.validate(), Err(EnsembleError::Empty));
        assert_eq!(EnsembleSpec::parse("0@7"), Err(EnsembleError::Empty));
    }

    #[test]
    fn oversized_k_is_rejected() {
        let spec = EnsembleSpec::with_k(MAX_ENSEMBLE + 1, 7);
        assert!(matches!(
            spec.validate(),
            Err(EnsembleError::TooLarge { .. })
        ));
    }

    #[test]
    fn bad_alpha_and_factor_are_rejected() {
        for alpha in [0.0, -0.2, 1.5, f64::NAN] {
            let spec = EnsembleSpec {
                ewma_alphas: vec![alpha],
                ..EnsembleSpec::with_k(2, 7)
            };
            assert!(
                matches!(spec.validate(), Err(EnsembleError::BadAlpha(_))),
                "{alpha}"
            );
        }
        for factor in [0.5, -1.0, f64::NAN, f64::INFINITY] {
            let spec = EnsembleSpec {
                surge_factor: factor,
                ..EnsembleSpec::with_k(2, 7)
            };
            assert!(
                matches!(spec.validate(), Err(EnsembleError::BadFactor(_))),
                "{factor}"
            );
        }
    }

    #[test]
    fn parse_accepts_shorthand_and_rejects_garbage() {
        let spec = EnsembleSpec::parse("4@42").unwrap();
        assert_eq!(spec.k, 4);
        assert_eq!(spec.seed, 42);
        for bad in ["", "4", "@", "x@1", "4@x", "4@-1", "4@1.5"] {
            assert!(
                matches!(EnsembleSpec::parse(bad), Err(EnsembleError::Malformed(_))),
                "{bad:?} should be malformed"
            );
        }
    }

    #[test]
    fn realization_is_deterministic_in_the_seed() {
        let spec = EnsembleSpec::with_k(6, 42);
        let a = spec.realize(&base()).unwrap();
        let b = spec.realize(&base()).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.matrices(), b.matrices());
        let other = EnsembleSpec::with_k(6, 43).realize(&base()).unwrap();
        assert_ne!(a.digest(), other.digest(), "surge variants follow the seed");
    }

    #[test]
    fn variants_share_the_base_endpoint_structure() {
        let ens = EnsembleSpec::with_k(8, 9).realize(&base()).unwrap();
        assert!(ens.len() >= 2);
        for m in ens.extras() {
            assert_eq!(m.len(), ens.base().len());
            for (d, b) in m.iter().zip(ens.base().iter()) {
                assert_eq!((d.src, d.dst, d.class), (b.src, b.dst, b.class));
            }
        }
        ens.validate_against(3).unwrap();
    }

    #[test]
    fn duplicate_alphas_dedupe_with_a_warning() {
        let spec = EnsembleSpec {
            ewma_alphas: vec![0.4, 0.4],
            ..EnsembleSpec::with_k(3, 5)
        };
        let ens = spec.realize(&base()).unwrap();
        assert_eq!(ens.len(), 2, "identical EWMA variants collapse");
        assert_eq!(ens.warnings().len(), 1);
        assert!(ens.warnings()[0].contains("deduped"));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut ens = TrafficEnsemble::new(base()).unwrap();
        // Wrong length.
        let short: DemandMatrix = base().iter().take(1).cloned().collect();
        assert!(matches!(
            ens.push_variant("short", short),
            Err(EnsembleError::DimensionMismatch { matrix: 1, .. })
        ));
        // Same length, different endpoint.
        let skewed: DemandMatrix = base()
            .iter()
            .cloned()
            .map(|mut d| {
                if d.src == SwitchId(2) {
                    d.src = SwitchId(0);
                }
                d
            })
            .collect();
        assert!(matches!(
            ens.push_variant("skewed", skewed),
            Err(EnsembleError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn invalid_rates_are_rejected() {
        // serde can smuggle rates `DemandMatrix::push` would panic on
        // (JSON `1e999` parses as +inf), so validation must catch them.
        let json = r#"{"demands":[
            {"src":0,"dst":1,"gbps":1e999,"class":"RswToEbb"},
            {"src":2,"dst":1,"gbps":20.0,"class":"RswToRsw"}]}"#;
        let inf: DemandMatrix = serde_json::from_str(json).unwrap();
        assert!(matches!(
            TrafficEnsemble::new(inf),
            Err(EnsembleError::InvalidRate {
                matrix: 0,
                index: 0,
                ..
            })
        ));
        let json_neg = r#"{"demands":[
            {"src":0,"dst":1,"gbps":10.0,"class":"RswToEbb"},
            {"src":2,"dst":1,"gbps":-3.0,"class":"RswToRsw"}]}"#;
        let neg: DemandMatrix = serde_json::from_str(json_neg).unwrap();
        let mut ens = TrafficEnsemble::new(base()).unwrap();
        assert!(matches!(
            ens.push_variant("neg", neg),
            Err(EnsembleError::InvalidRate {
                matrix: 1,
                index: 1,
                ..
            })
        ));
    }

    #[test]
    fn endpoints_outside_the_topology_are_rejected() {
        let ens = TrafficEnsemble::new(base()).unwrap();
        assert!(matches!(
            ens.validate_against(2),
            Err(EnsembleError::EndpointOutOfRange { switch: 2, .. })
        ));
        ens.validate_against(3).unwrap();
    }

    #[test]
    fn seed_is_explicit_in_the_wire_form() {
        // Satellite: the seed must travel with the spec — a JSON spec
        // without one is rejected rather than falling back to a default.
        let missing: Result<EnsembleSpec, _> = serde_json::from_str(r#"{"k":2}"#);
        assert!(missing.is_err());
        let ok: EnsembleSpec = serde_json::from_str(r#"{"k":2,"seed":7}"#).unwrap();
        assert_eq!(ok.seed, 7);
        assert_eq!(ok.ewma_alphas, vec![0.35, 0.65]);
    }

    #[test]
    fn k1_realizes_to_just_the_base() {
        let ens = EnsembleSpec::with_k(1, 99).realize(&base()).unwrap();
        assert_eq!(ens.len(), 1);
        assert!(ens.extras().is_empty());
        assert_eq!(ens.matrices()[0], base());
    }
}
