//! The demand set `D` of the problem formulation (§3, Table 2).
//!
//! A demand carries a source switch, a target switch, and a forecasted rate.
//! Demand constraints require a live path per demand and bounded per-circuit
//! ECMP utilization on every checked intermediate topology.

use klotski_topology::SwitchId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which endpoint-pair class a demand belongs to (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DemandClass {
    /// Region egress: rack switch to express-backbone router.
    RswToEbb,
    /// Region ingress: express-backbone router to rack switch.
    EbbToRsw,
    /// East/west between buildings: rack switch to rack switch.
    RswToRsw,
}

impl DemandClass {
    /// All classes.
    pub const ALL: [DemandClass; 3] = [
        DemandClass::RswToEbb,
        DemandClass::EbbToRsw,
        DemandClass::RswToRsw,
    ];
}

/// One forecasted traffic demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Source switch (`d_src`).
    pub src: SwitchId,
    /// Target switch (`d_tgt`).
    pub dst: SwitchId,
    /// Forecasted rate in Gbps.
    pub gbps: f64,
    /// Endpoint-pair class.
    pub class: DemandClass,
}

/// The demand set `D`: a collection of demands with aggregate queries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DemandMatrix {
    demands: Vec<Demand>,
}

impl DemandMatrix {
    /// Empty demand set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a demand.
    ///
    /// # Panics
    /// Panics on non-finite or negative rates and on `src == dst`
    /// (both indicate a generator bug, not an operational condition).
    pub fn push(&mut self, d: Demand) {
        assert!(
            d.gbps.is_finite() && d.gbps >= 0.0,
            "demand rate must be finite and non-negative, got {}",
            d.gbps
        );
        assert_ne!(d.src, d.dst, "demand endpoints must differ");
        self.demands.push(d);
    }

    /// Number of demands.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// True if there are no demands.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// All demands.
    pub fn iter(&self) -> impl Iterator<Item = &Demand> + '_ {
        self.demands.iter()
    }

    /// Total rate across all demands, Gbps.
    pub fn total_gbps(&self) -> f64 {
        self.demands.iter().map(|d| d.gbps).sum()
    }

    /// Total rate of one class, Gbps.
    pub fn class_total_gbps(&self, class: DemandClass) -> f64 {
        self.demands
            .iter()
            .filter(|d| d.class == class)
            .map(|d| d.gbps)
            .sum()
    }

    /// Multiplies every demand by `factor` (demand growth / forecast update).
    ///
    /// # Panics
    /// Panics on negative or non-finite factors.
    pub fn scale(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        for d in &mut self.demands {
            d.gbps *= factor;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        out.scale(factor);
        out
    }

    /// Groups demands by destination. Routing evaluates one shortest-path
    /// DAG per distinct destination, so the number of groups (not the number
    /// of demands) drives satisfiability-checking cost.
    pub fn by_destination(&self) -> BTreeMap<SwitchId, Vec<&Demand>> {
        let mut groups: BTreeMap<SwitchId, Vec<&Demand>> = BTreeMap::new();
        for d in &self.demands {
            groups.entry(d.dst).or_default().push(d);
        }
        groups
    }

    /// Distinct destination count.
    pub fn num_destinations(&self) -> usize {
        self.by_destination().len()
    }
}

impl FromIterator<Demand> for DemandMatrix {
    fn from_iter<T: IntoIterator<Item = Demand>>(iter: T) -> Self {
        let mut m = DemandMatrix::new();
        for d in iter {
            m.push(d);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(src: u32, dst: u32, gbps: f64, class: DemandClass) -> Demand {
        Demand {
            src: SwitchId(src),
            dst: SwitchId(dst),
            gbps,
            class,
        }
    }

    #[test]
    fn totals_and_class_totals() {
        let m: DemandMatrix = [
            d(0, 1, 10.0, DemandClass::RswToEbb),
            d(1, 0, 20.0, DemandClass::EbbToRsw),
            d(0, 2, 5.0, DemandClass::RswToRsw),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.len(), 3);
        assert!((m.total_gbps() - 35.0).abs() < 1e-9);
        assert!((m.class_total_gbps(DemandClass::RswToEbb) - 10.0).abs() < 1e-9);
        assert!((m.class_total_gbps(DemandClass::RswToRsw) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scale_multiplies_everything() {
        let mut m: DemandMatrix = [d(0, 1, 10.0, DemandClass::RswToEbb)].into_iter().collect();
        m.scale(1.5);
        assert!((m.total_gbps() - 15.0).abs() < 1e-9);
        let m2 = m.scaled(2.0);
        assert!((m2.total_gbps() - 30.0).abs() < 1e-9);
        assert!((m.total_gbps() - 15.0).abs() < 1e-9, "original unchanged");
    }

    #[test]
    fn by_destination_groups() {
        let m: DemandMatrix = [
            d(0, 5, 1.0, DemandClass::RswToEbb),
            d(1, 5, 2.0, DemandClass::RswToEbb),
            d(2, 6, 3.0, DemandClass::RswToRsw),
        ]
        .into_iter()
        .collect();
        let groups = m.by_destination();
        assert_eq!(groups.len(), 2);
        assert_eq!(m.num_destinations(), 2);
        assert_eq!(groups[&SwitchId(5)].len(), 2);
        assert_eq!(groups[&SwitchId(6)].len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_rejected() {
        let mut m = DemandMatrix::new();
        m.push(d(0, 1, -1.0, DemandClass::RswToEbb));
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_demand_rejected() {
        let mut m = DemandMatrix::new();
        m.push(d(3, 3, 1.0, DemandClass::RswToRsw));
    }

    #[test]
    fn zero_rate_allowed() {
        let mut m = DemandMatrix::new();
        m.push(d(0, 1, 0.0, DemandClass::RswToEbb));
        assert_eq!(m.total_gbps(), 0.0);
    }
}
