//! Unexpected traffic surges (§7.2 deployment experience).
//!
//! "In one incident, warm storage decided to change its backup placement
//! strategy during a network migration. That caused days of traffic spikes."
//! Surge events multiply the rate of one demand class (or all classes) for a
//! window of migration steps; the executor injects them to exercise the
//! replanning path.

use crate::demand::{DemandClass, DemandMatrix};
use serde::{Deserialize, Serialize};

/// A traffic surge active over a window of migration steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgeEvent {
    /// First migration step (0-based) at which the surge is active.
    pub from_step: usize,
    /// First step at which the surge is no longer active (exclusive).
    pub until_step: usize,
    /// Multiplier applied to affected demands (e.g. 1.4 = +40%).
    pub factor: f64,
    /// Affected class; `None` = all classes.
    pub class: Option<DemandClass>,
}

impl SurgeEvent {
    /// A surge on one class.
    pub fn on_class(from_step: usize, until_step: usize, factor: f64, class: DemandClass) -> Self {
        Self {
            from_step,
            until_step,
            factor,
            class: Some(class),
        }
    }

    /// True if the surge is active at `step`.
    pub fn active_at(&self, step: usize) -> bool {
        (self.from_step..self.until_step).contains(&step)
    }

    /// Applies this surge to a copy of `matrix` if active at `step`.
    pub fn apply(&self, matrix: &DemandMatrix, step: usize) -> DemandMatrix {
        assert!(
            self.factor.is_finite() && self.factor >= 0.0,
            "surge factor must be finite and non-negative"
        );
        if !self.active_at(step) {
            return matrix.clone();
        }
        match self.class {
            None => matrix.scaled(self.factor),
            Some(class) => matrix
                .iter()
                .cloned()
                .map(|mut d| {
                    if d.class == class {
                        d.gbps *= self.factor;
                    }
                    d
                })
                .collect(),
        }
    }
}

/// Applies every active surge in order.
pub fn apply_surges(matrix: &DemandMatrix, surges: &[SurgeEvent], step: usize) -> DemandMatrix {
    let mut out = matrix.clone();
    for s in surges {
        out = s.apply(&out, step);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Demand;
    use klotski_topology::SwitchId;

    fn matrix() -> DemandMatrix {
        [
            Demand {
                src: SwitchId(0),
                dst: SwitchId(1),
                gbps: 10.0,
                class: DemandClass::RswToEbb,
            },
            Demand {
                src: SwitchId(2),
                dst: SwitchId(3),
                gbps: 20.0,
                class: DemandClass::RswToRsw,
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn surge_applies_only_in_window() {
        let s = SurgeEvent::on_class(2, 5, 2.0, DemandClass::RswToRsw);
        assert!(!s.active_at(1));
        assert!(s.active_at(2));
        assert!(s.active_at(4));
        assert!(!s.active_at(5));
        let m = matrix();
        assert_eq!(s.apply(&m, 1), m);
        let surged = s.apply(&m, 3);
        assert!((surged.class_total_gbps(DemandClass::RswToRsw) - 40.0).abs() < 1e-9);
        assert!((surged.class_total_gbps(DemandClass::RswToEbb) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn classless_surge_scales_everything() {
        let s = SurgeEvent {
            from_step: 0,
            until_step: 10,
            factor: 1.5,
            class: None,
        };
        let surged = s.apply(&matrix(), 0);
        assert!((surged.total_gbps() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn stacked_surges_compose_multiplicatively() {
        let surges = vec![
            SurgeEvent {
                from_step: 0,
                until_step: 10,
                factor: 2.0,
                class: None,
            },
            SurgeEvent::on_class(0, 10, 3.0, DemandClass::RswToEbb),
        ];
        let out = apply_surges(&matrix(), &surges, 0);
        assert!((out.class_total_gbps(DemandClass::RswToEbb) - 60.0).abs() < 1e-9);
        assert!((out.class_total_gbps(DemandClass::RswToRsw) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_never_fires() {
        let s = SurgeEvent::on_class(3, 3, 9.0, DemandClass::RswToEbb);
        assert!(!s.active_at(3));
        assert_eq!(s.apply(&matrix(), 3), matrix());
    }
}
