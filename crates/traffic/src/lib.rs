//! # klotski-traffic
//!
//! Traffic-demand substrate for the Klotski migration planner.
//!
//! The paper's safety constraints (Eq. 4–5) are evaluated against
//! *forecasted* traffic demands between three kinds of endpoint pairs:
//! RSW → EBB (region egress), EBB → RSW (region ingress), and RSW → RSW
//! (east/west between buildings), with totals in the hundreds of Tbps at
//! full production scale (§6.1).
//!
//! This crate provides:
//! - [`Demand`]/[`DemandMatrix`]: the demand set `D` of the formulation;
//! - [`generator`]: seeded synthetic demand generation over a topology;
//! - [`history`]/[`forecast`]: synthetic traffic histories and the
//!   forecasters the deployment experience (§7.1) calls for — demand is
//!   re-forecast after each migration step because migrations last months;
//! - [`surge`]: unexpected traffic-surge events (§7.2, the warm-storage
//!   backup incident) for executor fault injection.

pub mod demand;
pub mod ensemble;
pub mod forecast;
pub mod generator;
pub mod history;
pub mod surge;

pub use demand::{Demand, DemandClass, DemandMatrix};
pub use ensemble::{matrix_digest, EnsembleError, EnsembleSpec, TrafficEnsemble};
pub use forecast::{EwmaForecaster, Forecaster, LinearTrendForecaster, SeasonalNaiveForecaster};
pub use generator::{generate, DemandGenConfig};
pub use history::{HistoryConfig, TrafficHistory};
pub use surge::SurgeEvent;
