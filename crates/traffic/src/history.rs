//! Synthetic traffic histories.
//!
//! The paper forecasts demand "based on historical data collected by Meta's
//! DCNs" (§6.1). Production telemetry is proprietary, so this module
//! synthesizes daily aggregate-traffic series with the three components that
//! drive forecasting behaviour during month-long migrations (§7.1): organic
//! growth (trend), weekly seasonality, and noise.

use rand::rngs::SmallRng;
use rand::RngExt;
use rand::SeedableRng;

use serde::{Deserialize, Serialize};

/// Parameters for synthetic history generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of daily samples to generate.
    pub days: usize,
    /// Mean traffic level at day 0 (arbitrary unit; callers treat the series
    /// as a multiplier against a base demand matrix).
    pub base: f64,
    /// Linear growth per day as a fraction of `base` (e.g. 0.003 ≈ +9%/month,
    /// matching the "traffic grows organically" observation of §2.3).
    pub daily_growth: f64,
    /// Amplitude of weekly seasonality as a fraction of the trend level.
    pub weekly_amplitude: f64,
    /// Standard deviation of multiplicative noise.
    pub noise_std: f64,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        Self {
            seed: 11,
            days: 120,
            base: 1.0,
            daily_growth: 0.003,
            weekly_amplitude: 0.05,
            noise_std: 0.01,
        }
    }
}

/// A daily aggregate-traffic series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficHistory {
    samples: Vec<f64>,
}

impl TrafficHistory {
    /// Generates a synthetic history.
    pub fn synthesize(cfg: &HistoryConfig) -> Self {
        assert!(cfg.days > 0, "history needs at least one day");
        assert!(cfg.base > 0.0, "base level must be positive");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let samples = (0..cfg.days)
            .map(|day| {
                let trend = cfg.base * (1.0 + cfg.daily_growth * day as f64);
                let season =
                    1.0 + cfg.weekly_amplitude * (day as f64 * std::f64::consts::TAU / 7.0).sin();
                // Box-Muller for a normal sample; `rand` distributions are
                // kept out to avoid the rand_distr dependency.
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let noise = 1.0 + cfg.noise_std * z;
                (trend * season * noise).max(0.0)
            })
            .collect();
        Self { samples }
    }

    /// Wraps an existing series.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "history must be non-empty");
        assert!(
            samples.iter().all(|s| s.is_finite() && *s >= 0.0),
            "history samples must be finite and non-negative"
        );
        Self { samples }
    }

    /// The daily samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of days.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Latest sample.
    pub fn latest(&self) -> f64 {
        *self.samples.last().expect("non-empty by construction")
    }

    /// Appends an observed day (executor feeds realized traffic back in
    /// between migration steps).
    pub fn observe(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "observed value must be finite and non-negative"
        );
        self.samples.push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = HistoryConfig::default();
        assert_eq!(
            TrafficHistory::synthesize(&cfg),
            TrafficHistory::synthesize(&cfg)
        );
    }

    #[test]
    fn trend_grows_over_time() {
        let cfg = HistoryConfig {
            noise_std: 0.0,
            weekly_amplitude: 0.0,
            ..HistoryConfig::default()
        };
        let h = TrafficHistory::synthesize(&cfg);
        assert!(
            h.samples()[119] > h.samples()[0] * 1.3,
            "+0.3%/day over 120d"
        );
    }

    #[test]
    fn seasonality_oscillates_weekly() {
        let cfg = HistoryConfig {
            noise_std: 0.0,
            daily_growth: 0.0,
            weekly_amplitude: 0.2,
            ..HistoryConfig::default()
        };
        let h = TrafficHistory::synthesize(&cfg);
        // A weekly sinusoid repeats every 7 days.
        for day in 0..7 {
            assert!((h.samples()[day] - h.samples()[day + 7]).abs() < 1e-9);
        }
        let max = h.samples().iter().cloned().fold(f64::MIN, f64::max);
        let min = h.samples().iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 1.15 && min < 0.85);
    }

    #[test]
    fn samples_stay_non_negative() {
        let cfg = HistoryConfig {
            noise_std: 3.0, // absurd noise
            ..HistoryConfig::default()
        };
        let h = TrafficHistory::synthesize(&cfg);
        assert!(h.samples().iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn observe_appends() {
        let mut h = TrafficHistory::from_samples(vec![1.0, 2.0]);
        h.observe(3.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.latest(), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_samples_rejects_nan() {
        TrafficHistory::from_samples(vec![1.0, f64::NAN]);
    }
}
