//! Demand forecasters.
//!
//! §7.1 of the paper: "we run the forecast after each migration step
//! [and] re-run the migration planning with the updated demand". A
//! forecaster looks at a traffic history and predicts the level over the
//! next migration step; the executor scales the base demand matrix by the
//! predicted level before replanning.

use crate::history::TrafficHistory;

/// Predicts future aggregate traffic levels from a history.
pub trait Forecaster {
    /// Predicts the traffic level `horizon` days past the end of `history`.
    fn forecast(&self, history: &TrafficHistory, horizon: usize) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Ordinary least-squares linear trend over the trailing window.
#[derive(Debug, Clone)]
pub struct LinearTrendForecaster {
    /// How many trailing days to fit (0 = all).
    pub window: usize,
}

impl Default for LinearTrendForecaster {
    fn default() -> Self {
        Self { window: 28 }
    }
}

impl Forecaster for LinearTrendForecaster {
    fn forecast(&self, history: &TrafficHistory, horizon: usize) -> f64 {
        let s = history.samples();
        let start = if self.window == 0 || self.window >= s.len() {
            0
        } else {
            s.len() - self.window
        };
        let w = &s[start..];
        let n = w.len() as f64;
        if w.len() == 1 {
            return w[0];
        }
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = w.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (i, &y) in w.iter().enumerate() {
            let dx = i as f64 - mean_x;
            sxx += dx * dx;
            sxy += dx * (y - mean_y);
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let x = (w.len() - 1 + horizon) as f64;
        (mean_y + slope * (x - mean_x)).max(0.0)
    }

    fn name(&self) -> &'static str {
        "linear-trend"
    }
}

/// Exponentially-weighted moving average; horizon-agnostic (level forecast).
#[derive(Debug, Clone)]
pub struct EwmaForecaster {
    /// Smoothing factor in (0, 1]; higher = more weight on recent days.
    pub alpha: f64,
}

impl Default for EwmaForecaster {
    fn default() -> Self {
        Self { alpha: 0.2 }
    }
}

impl Forecaster for EwmaForecaster {
    fn forecast(&self, history: &TrafficHistory, _horizon: usize) -> f64 {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        let s = history.samples();
        let mut level = s[0];
        for &y in &s[1..] {
            level = self.alpha * y + (1.0 - self.alpha) * level;
        }
        level
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Seasonal naive: predicts the value observed one season (default a week)
/// before the target day.
#[derive(Debug, Clone)]
pub struct SeasonalNaiveForecaster {
    /// Season length in days.
    pub period: usize,
}

impl Default for SeasonalNaiveForecaster {
    fn default() -> Self {
        Self { period: 7 }
    }
}

impl Forecaster for SeasonalNaiveForecaster {
    fn forecast(&self, history: &TrafficHistory, horizon: usize) -> f64 {
        assert!(self.period > 0, "season length must be positive");
        let s = history.samples();
        // Target index = len-1+horizon; step back whole seasons until we land
        // inside the history.
        let target = s.len() - 1 + horizon;
        let mut idx = target;
        while idx >= s.len() {
            if idx < self.period {
                return s[idx % s.len().min(self.period).max(1)];
            }
            idx -= self.period;
        }
        s[idx]
    }

    fn name(&self) -> &'static str {
        "seasonal-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryConfig;

    fn linear_history() -> TrafficHistory {
        TrafficHistory::from_samples((0..30).map(|d| 100.0 + 2.0 * d as f64).collect())
    }

    #[test]
    fn linear_trend_extrapolates_exactly_on_linear_data() {
        let f = LinearTrendForecaster { window: 0 };
        let h = linear_history();
        // Day 29 is 158; day 29+10 should be 178.
        assert!((f.forecast(&h, 10) - 178.0).abs() < 1e-6);
        assert!((f.forecast(&h, 0) - 158.0).abs() < 1e-6);
    }

    #[test]
    fn linear_trend_respects_window() {
        // First 20 days flat at 100, last 10 days rising steeply.
        let mut v = vec![100.0; 20];
        v.extend((0..10).map(|d| 100.0 + 10.0 * d as f64));
        let h = TrafficHistory::from_samples(v);
        let narrow = LinearTrendForecaster { window: 10 }.forecast(&h, 5);
        let wide = LinearTrendForecaster { window: 0 }.forecast(&h, 5);
        assert!(narrow > wide, "narrow window should chase the recent ramp");
    }

    #[test]
    fn linear_trend_single_sample() {
        let h = TrafficHistory::from_samples(vec![42.0]);
        assert_eq!(LinearTrendForecaster::default().forecast(&h, 7), 42.0);
    }

    #[test]
    fn linear_trend_never_negative() {
        let h = TrafficHistory::from_samples(
            (0..10)
                .map(|d| 100.0 - 15.0 * d as f64)
                .collect::<Vec<_>>()
                .into_iter()
                .map(|x: f64| x.max(0.0))
                .collect(),
        );
        assert!(LinearTrendForecaster { window: 0 }.forecast(&h, 50) >= 0.0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let h = TrafficHistory::from_samples(vec![5.0; 50]);
        assert!((EwmaForecaster::default().forecast(&h, 3) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_weights_recent_more() {
        let mut v = vec![1.0; 49];
        v.push(10.0);
        let h = TrafficHistory::from_samples(v);
        let fast = EwmaForecaster { alpha: 0.9 }.forecast(&h, 1);
        let slow = EwmaForecaster { alpha: 0.1 }.forecast(&h, 1);
        assert!(fast > slow);
        assert!(fast > 8.0 && slow < 3.0);
    }

    #[test]
    fn seasonal_naive_repeats_last_week() {
        let h = TrafficHistory::from_samples((0..28).map(|d| (d % 7) as f64).collect());
        let f = SeasonalNaiveForecaster::default();
        // Horizon 1 lands on weekday (27+1)%7 = 0.
        assert_eq!(f.forecast(&h, 1), 0.0);
        assert_eq!(f.forecast(&h, 3), 2.0);
    }

    #[test]
    fn forecasters_track_synthetic_growth_within_tolerance() {
        let cfg = HistoryConfig {
            noise_std: 0.005,
            ..HistoryConfig::default()
        };
        let h = TrafficHistory::synthesize(&cfg);
        let truth = cfg.base * (1.0 + cfg.daily_growth * (cfg.days as f64 + 14.0));
        let pred = LinearTrendForecaster::default().forecast(&h, 14);
        assert!(
            (pred - truth).abs() / truth < 0.1,
            "pred {pred} vs truth {truth}"
        );
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            LinearTrendForecaster::default().name(),
            EwmaForecaster::default().name(),
            SeasonalNaiveForecaster::default().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
