//! Seeded synthetic demand generation over a topology.
//!
//! Production demand matrices are proprietary; this generator reproduces
//! their *structure* (§6.1): three endpoint-pair classes with configurable
//! class totals, endpoints stratified across pods and datacenters so that
//! east/west demands actually traverse the FA layer being migrated.
//!
//! To keep satisfiability checks O(|S|+|C|) per destination group, the
//! generator concentrates demands on a bounded set of representative
//! destination switches (`rsw_destinations` RSWs plus every EBB).

use crate::demand::{Demand, DemandClass, DemandMatrix};
use klotski_topology::{SwitchId, SwitchRole, Topology};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use serde::{Deserialize, Serialize};

/// Parameters for synthetic demand generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandGenConfig {
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// How many representative RSWs serve as destinations (bounds the
    /// number of shortest-path DAGs routing must evaluate).
    pub rsw_destinations: usize,
    /// How many RSWs source traffic per class.
    pub rsw_sources: usize,
    /// Total region-egress rate (RSW→EBB), Gbps.
    pub rsw_ebb_gbps: f64,
    /// Total region-ingress rate (EBB→RSW), Gbps.
    pub ebb_rsw_gbps: f64,
    /// Total east/west rate (RSW→RSW across buildings), Gbps.
    pub rsw_rsw_gbps: f64,
}

impl Default for DemandGenConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            rsw_destinations: 24,
            rsw_sources: 256,
            rsw_ebb_gbps: 4_000.0,
            ebb_rsw_gbps: 4_000.0,
            rsw_rsw_gbps: 8_000.0,
        }
    }
}

/// Picks up to `n` switches from `pool`, stratified: shuffles deterministically
/// then takes a stride so picks spread across the pool (and thus across pods
/// and datacenters, since ids are built in pod/DC order).
fn stratified_pick(pool: &[SwitchId], n: usize, rng: &mut SmallRng) -> Vec<SwitchId> {
    if pool.is_empty() || n == 0 {
        return Vec::new();
    }
    let n = n.min(pool.len());
    let stride = pool.len() / n;
    let mut picks: Vec<SwitchId> = (0..n).map(|i| pool[i * stride]).collect();
    picks.shuffle(rng);
    picks
}

/// Generates a demand matrix over `topo` per `cfg`.
///
/// Demands never source or sink at switches that migrations operate on
/// (FA sub-switches, SSWs, MAs): endpoints are RSWs and EBBs only, which is
/// both what the paper states (§6.1) and what keeps endpoints alive through
/// every intermediate topology.
pub fn generate(topo: &Topology, cfg: &DemandGenConfig) -> DemandMatrix {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let rsws: Vec<SwitchId> = topo
        .switches_by_role(SwitchRole::Rsw)
        .map(|s| s.id)
        .collect();
    let ebbs: Vec<SwitchId> = topo
        .switches_by_role(SwitchRole::Ebb)
        .map(|s| s.id)
        .collect();
    assert!(!rsws.is_empty(), "topology has no RSWs");
    assert!(!ebbs.is_empty(), "topology has no EBBs");

    let sources = stratified_pick(&rsws, cfg.rsw_sources, &mut rng);
    let rsw_dsts = stratified_pick(&rsws, cfg.rsw_destinations, &mut rng);

    let mut m = DemandMatrix::new();

    // RSW -> EBB, split uniformly over (source, EBB) pairs.
    if cfg.rsw_ebb_gbps > 0.0 {
        let per = cfg.rsw_ebb_gbps / (sources.len() * ebbs.len()) as f64;
        for &src in &sources {
            for &dst in &ebbs {
                m.push(Demand {
                    src,
                    dst,
                    gbps: per,
                    class: DemandClass::RswToEbb,
                });
            }
        }
    }

    // EBB -> RSW, split uniformly over (EBB, representative RSW) pairs.
    if cfg.ebb_rsw_gbps > 0.0 {
        let per = cfg.ebb_rsw_gbps / (ebbs.len() * rsw_dsts.len()) as f64;
        for &src in &ebbs {
            for &dst in &rsw_dsts {
                m.push(Demand {
                    src,
                    dst,
                    gbps: per,
                    class: DemandClass::EbbToRsw,
                });
            }
        }
    }

    // RSW -> RSW east/west, preferring cross-building pairs so the traffic
    // exercises the FA layer. Falls back to any distinct pair in
    // single-building regions.
    if cfg.rsw_rsw_gbps > 0.0 {
        let mut pairs: Vec<(SwitchId, SwitchId)> = Vec::new();
        for &src in &sources {
            for &dst in &rsw_dsts {
                if src == dst {
                    continue;
                }
                let cross_dc = topo.switch(src).dc != topo.switch(dst).dc;
                pairs.push((src, dst));
                if !cross_dc {
                    // keep, but cross-DC pairs get double weight below
                }
            }
        }
        assert!(!pairs.is_empty(), "no east/west pairs available");
        let weight = |&(s, d): &(SwitchId, SwitchId)| -> f64 {
            if topo.switch(s).dc != topo.switch(d).dc {
                2.0
            } else {
                1.0
            }
        };
        let total_weight: f64 = pairs.iter().map(weight).sum();
        for pair in &pairs {
            m.push(Demand {
                src: pair.0,
                dst: pair.1,
                gbps: cfg.rsw_rsw_gbps * weight(pair) / total_weight,
                class: DemandClass::RswToRsw,
            });
        }
    }

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::presets::{self, PresetId};

    fn topo() -> Topology {
        presets::build(PresetId::A).topology
    }

    #[test]
    fn class_totals_match_config() {
        let t = topo();
        let cfg = DemandGenConfig::default();
        let m = generate(&t, &cfg);
        assert!((m.class_total_gbps(DemandClass::RswToEbb) - cfg.rsw_ebb_gbps).abs() < 1e-6);
        assert!((m.class_total_gbps(DemandClass::EbbToRsw) - cfg.ebb_rsw_gbps).abs() < 1e-6);
        assert!((m.class_total_gbps(DemandClass::RswToRsw) - cfg.rsw_rsw_gbps).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = topo();
        let cfg = DemandGenConfig::default();
        assert_eq!(generate(&t, &cfg), generate(&t, &cfg));
        let other = generate(
            &t,
            &DemandGenConfig {
                seed: 8,
                ..cfg.clone()
            },
        );
        // Different seed shuffles endpoints; totals still match.
        assert!((other.total_gbps() - generate(&t, &cfg).total_gbps()).abs() < 1e-6);
    }

    #[test]
    fn endpoints_are_only_rsws_and_ebbs() {
        let t = topo();
        let m = generate(&t, &DemandGenConfig::default());
        for d in m.iter() {
            let src_role = t.switch(d.src).role;
            let dst_role = t.switch(d.dst).role;
            assert!(matches!(src_role, SwitchRole::Rsw | SwitchRole::Ebb));
            assert!(matches!(dst_role, SwitchRole::Rsw | SwitchRole::Ebb));
        }
    }

    #[test]
    fn destination_count_is_bounded() {
        let t = topo();
        let cfg = DemandGenConfig::default();
        let m = generate(&t, &cfg);
        let ebbs = t.switches_by_role(SwitchRole::Ebb).count();
        assert!(m.num_destinations() <= cfg.rsw_destinations + ebbs);
    }

    #[test]
    fn zero_class_produces_no_demands() {
        let t = topo();
        let m = generate(
            &t,
            &DemandGenConfig {
                rsw_ebb_gbps: 0.0,
                ebb_rsw_gbps: 0.0,
                rsw_rsw_gbps: 100.0,
                ..DemandGenConfig::default()
            },
        );
        assert_eq!(m.class_total_gbps(DemandClass::RswToEbb), 0.0);
        assert!(m.iter().all(|d| d.class == DemandClass::RswToRsw));
    }

    #[test]
    fn sources_spread_across_pool() {
        // Stratified picks with stride must not all come from one pod.
        let t = presets::build(PresetId::B).topology;
        let m = generate(&t, &DemandGenConfig::default());
        let pods: std::collections::HashSet<_> = m
            .iter()
            .filter(|d| d.class == DemandClass::RswToEbb)
            .map(|d| t.switch(d.src).pod)
            .collect();
        assert!(pods.len() > 1, "sources should span multiple pods");
    }
}
