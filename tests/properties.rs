//! Property-based integration tests over the planning stack.

use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, DpPlanner, Planner};
use klotski::core::{CompactState, CostModel};
use klotski::routing::{evaluate, EcmpRouter, LoadMap};
use klotski::topology::presets::{self, PresetId};
use klotski::topology::NetState;
use klotski::traffic::{generate, DemandGenConfig};
use proptest::prelude::*;

fn preset_a_spec(theta: f64, seed: u64) -> Option<klotski::core::migration::MigrationSpec> {
    MigrationBuilder::hgrid_v1_to_v2(
        &presets::build(PresetId::A),
        &MigrationOptions {
            theta,
            demand_cfg: DemandGenConfig {
                seed,
                ..DemandGenConfig::default()
            },
            ..MigrationOptions::default()
        },
    )
    .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the θ/seed combination, if a spec builds then A* and DP
    /// agree and both plans validate.
    #[test]
    fn prop_planners_agree_and_validate(
        theta in 0.70f64..0.95,
        seed in 0u64..500,
    ) {
        if let Some(spec) = preset_a_spec(theta, seed) {
            let astar = AStarPlanner::default().plan(&spec);
            let dp = DpPlanner::default().plan(&spec);
            match (astar, dp) {
                (Ok(a), Ok(d)) => {
                    prop_assert!((a.cost - d.cost).abs() < 1e-9);
                    prop_assert!(validate_plan(&spec, &a.plan).is_ok());
                    prop_assert!(validate_plan(&spec, &d.plan).is_ok());
                }
                (Err(_), Err(_)) => {} // both infeasible is consistent
                (a, d) => prop_assert!(
                    false,
                    "planners disagree on feasibility: A*={:?} DP={:?}",
                    a.map(|o| o.cost),
                    d.map(|o| o.cost)
                ),
            }
        }
    }

    /// ECMP routing conserves flow: total per-circuit flow equals the sum
    /// over demands of rate x path length, and never goes negative.
    #[test]
    fn prop_routing_flow_is_sane(seed in 0u64..1000) {
        let preset = presets::build(PresetId::A);
        let topo = &preset.topology;
        let mut state = NetState::all_up(topo);
        for s in preset.handles.hgrid_v2_switches() {
            state.drain_switch(topo, s);
        }
        let demands = generate(topo, &DemandGenConfig { seed, ..DemandGenConfig::default() });
        let mut router = EcmpRouter::new(topo);
        let mut loads = LoadMap::new(topo);
        let out = router.route(topo, &state, &demands, &mut loads);
        prop_assert!(out.all_reachable());
        prop_assert!(out.routed_gbps > 0.0);
        prop_assert!(loads.total_flow() >= out.routed_gbps - 1e-6,
            "every routed demand crosses at least one circuit");
        for c in topo.circuits() {
            prop_assert!(loads.max_direction(c.id) >= 0.0);
            if !state.circuit_usable(topo, c.id) {
                prop_assert!(loads.max_direction(c.id) == 0.0,
                    "unusable circuits must carry nothing");
            }
        }
    }

    /// Scaling the demand matrix scales utilization linearly.
    #[test]
    fn prop_utilization_is_linear_in_demand(factor in 0.1f64..3.0) {
        let preset = presets::build(PresetId::A);
        let topo = &preset.topology;
        let state = NetState::all_up(topo);
        let demands = generate(topo, &DemandGenConfig::default());
        let base = evaluate(topo, &state, &demands, 10.0).report.max_utilization;
        let scaled = evaluate(topo, &state, &demands.scaled(factor), 10.0)
            .report
            .max_utilization;
        prop_assert!((scaled - base * factor).abs() < 1e-6 * factor.max(1.0));
    }

    /// Plan cost under the sequence model always lies between the phase
    /// count (alpha = 0) and the step count (alpha = 1).
    #[test]
    fn prop_cost_bounds(alpha in 0.0f64..=1.0) {
        let spec = preset_a_spec(0.75, 7).unwrap();
        let outcome = AStarPlanner::with_alpha(alpha).plan(&spec).unwrap();
        let phases = outcome.plan.num_phases() as f64;
        let steps = outcome.plan.num_steps() as f64;
        let model = CostModel::new(alpha);
        let cost = outcome.plan.cost(&model);
        prop_assert!(cost >= phases - 1e-9);
        prop_assert!(cost <= steps + 1e-9);
        prop_assert!((cost - outcome.cost).abs() < 1e-9);
    }

    /// The compact representation is a faithful quotient: replaying any
    /// prefix multiset of actions lands on the same activation state
    /// regardless of interleaving.
    #[test]
    fn prop_states_depend_only_on_counts(
        interleaving in proptest::collection::vec(prop::bool::ANY, 9),
    ) {
        let spec = preset_a_spec(0.75, 7).unwrap();
        // Derive an action order from the interleaving bits, bounded by the
        // per-type supply.
        let target = spec.target_counts.clone();
        let mut v = CompactState::origin(spec.num_types());
        let mut state = spec.initial.clone();
        for &bit in &interleaving {
            let a = klotski::core::ActionTypeId(u8::from(bit));
            if v.count(a) < target.count(a) {
                spec.apply_next(&mut state, &v, a);
                v = v.advanced(a);
            }
        }
        prop_assert_eq!(spec.state_for(&v), state);
    }
}
