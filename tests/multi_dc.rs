//! Multi-datacenter and mixed-generation scenarios (§2.2: "Consider
//! multiple DCs" and "Consider different generations").

use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::topology::fabric::FabricConfig;
use klotski::topology::hgrid::HgridConfig;
use klotski::topology::ma::BackboneConfig;
use klotski::topology::presets::{Preset, PresetId};
use klotski::topology::region::{build_region, RegionConfig};

fn fabric(pods: usize, rsws: usize, planes: usize, ssws: usize) -> FabricConfig {
    FabricConfig {
        pods,
        rsws_per_pod: rsws,
        planes,
        ssws_per_plane: ssws,
        rsw_fsw_gbps: 3200.0 / planes as f64,
        fsw_ssw_gbps: 6400.0 / planes as f64,
        ..FabricConfig::default()
    }
}

fn preset_from(config: RegionConfig) -> Preset {
    let (topology, handles) = build_region(&config);
    Preset {
        id: PresetId::A, // tag only; planning reads topology + handles
        config,
        topology,
        handles,
    }
}

/// §2.2: migrating two DCs at once — a coordinated forklift of both
/// buildings' spines in one planning instance, so the planner accounts for
/// the coupled capacity loss that independent per-DC plans would miss.
#[test]
fn coordinated_two_dc_forklift_plans() {
    let preset = preset_from(RegionConfig {
        name: "two-dc-forklift".into(),
        dcs: vec![fabric(4, 4, 4, 6); 2],
        hgrid_v1: HgridConfig::v1(4, 4, 2),
        hgrid_v2: None,
        backbone: BackboneConfig {
            ebs: 4,
            drs: 2,
            ebbs: 2,
            ..BackboneConfig::default()
        },
        dmag: None,
        ssw_forklift_dcs: vec![0, 1],
    });
    let spec = MigrationBuilder::ssw_forklift(&preset, &MigrationOptions::default()).unwrap();
    // Both DCs' planes are in the block set: 2 DCs x 4 planes x 3 groups.
    assert_eq!(spec.target_counts.counts(), &[24, 24]);
    let outcome = AStarPlanner::default().plan(&spec).unwrap();
    validate_plan(&spec, &outcome.plan).unwrap();
    // Draining spine in both DCs at once must still leave every
    // intermediate state safe — the coupled constraint the paper warns
    // about ("DC1's circuits 2 and 4 are effectively lost as well").
    assert!(outcome.cost >= 2.0);
}

/// §2.2 / Figure 2(d): one building on 4 planes, another on 8 — multiple
/// fabric generations coexisting in one region, migrated together.
#[test]
fn mixed_plane_generations_migrate_together() {
    let preset = preset_from(RegionConfig {
        name: "mixed-generations".into(),
        dcs: vec![fabric(4, 4, 4, 4), fabric(4, 4, 8, 4)],
        hgrid_v1: HgridConfig::v1(4, 8, 4),
        hgrid_v2: Some(HgridConfig {
            uplinks_per_ssw: 2,
            ..HgridConfig::v2(8, 8, 4)
        }),
        backbone: BackboneConfig {
            ebs: 4,
            drs: 2,
            ebbs: 2,
            ..BackboneConfig::default()
        },
        dmag: None,
        ssw_forklift_dcs: vec![],
    });
    // The union graph spans both plane counts.
    let planes = preset.topology.stats().planes;
    assert_eq!(planes, 8, "plane ids 0..8 present across buildings");

    // Mixed plane counts concentrate the 4-plane building's FA share, so
    // the layer starts a little cooler than the single-generation presets.
    let opts = MigrationOptions {
        initial_layer_utilization: 0.35,
        ..MigrationOptions::default()
    };
    let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &opts).unwrap();
    let outcome = AStarPlanner::default().plan(&spec).unwrap();
    validate_plan(&spec, &outcome.plan).unwrap();
}

/// Draining one DC's spine makes the *other* DC's east/west traffic lose
/// its inter-building paths through the drained fabric — the coupled
/// capacity effect of §2.2. Joint planning must still find a safe order.
#[test]
fn one_dc_forklift_in_a_three_building_region() {
    let preset = preset_from(RegionConfig {
        name: "three-dc-one-forklift".into(),
        dcs: vec![fabric(3, 4, 4, 4); 3],
        hgrid_v1: HgridConfig::v1(4, 4, 2),
        hgrid_v2: None,
        backbone: BackboneConfig {
            ebs: 4,
            drs: 2,
            ebbs: 2,
            ..BackboneConfig::default()
        },
        dmag: None,
        ssw_forklift_dcs: vec![1],
    });
    let spec = MigrationBuilder::ssw_forklift(&preset, &MigrationOptions::default()).unwrap();
    // Only the middle building's spine is in scope.
    assert_eq!(spec.target_counts.counts(), &[12, 12]);
    let outcome = AStarPlanner::default().plan(&spec).unwrap();
    validate_plan(&spec, &outcome.plan).unwrap();
}
