//! End-to-end integration: preset topology → migration spec → every planner
//! → independent plan validation → simulated execution.

use klotski::baselines::{JanusPlanner, MrcPlanner};
use klotski::core::executor::{execute, ExecutorConfig};
use klotski::core::migration::{MigrationBuilder, MigrationOptions, MigrationType};
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, DpPlanner, Planner};
use klotski::topology::presets::{self, PresetId};

fn spec(id: PresetId) -> klotski::core::migration::MigrationSpec {
    MigrationBuilder::for_preset(&presets::build_for_bench(id), &MigrationOptions::default())
        .unwrap()
}

#[test]
fn hgrid_pipeline_on_a_and_b() {
    for id in [PresetId::A, PresetId::B] {
        let spec = spec(id);
        assert_eq!(spec.migration_type, MigrationType::HgridV1V2);
        let planners: Vec<Box<dyn Planner>> = vec![
            Box::new(AStarPlanner::default()),
            Box::new(DpPlanner::default()),
            Box::new(MrcPlanner::default()),
            Box::new(JanusPlanner::default()),
        ];
        let mut costs = Vec::new();
        for planner in &planners {
            let outcome = planner
                .plan(&spec)
                .unwrap_or_else(|e| panic!("{} failed on {id}: {e}", planner.name()));
            validate_plan(&spec, &outcome.plan)
                .unwrap_or_else(|e| panic!("{} produced unsafe plan on {id}: {e}", planner.name()));
            costs.push(outcome.cost);
        }
        // A*, DP, Janus agree; MRC can only be worse.
        assert!((costs[0] - costs[1]).abs() < 1e-9, "{id}: A* vs DP");
        assert!((costs[0] - costs[3]).abs() < 1e-9, "{id}: A* vs Janus");
        assert!(costs[2] >= costs[0], "{id}: MRC beats the optimum?");
    }
}

#[test]
fn every_preset_plans_and_validates_with_astar() {
    for id in PresetId::ALL {
        let spec = spec(id);
        let outcome = AStarPlanner::default()
            .plan(&spec)
            .unwrap_or_else(|e| panic!("A* failed on {id}: {e}"));
        validate_plan(&spec, &outcome.plan).unwrap_or_else(|e| panic!("unsafe on {id}: {e}"));
        assert_eq!(outcome.plan.num_steps(), spec.num_blocks(), "{id}");
        // The plan must really migrate: the final state equals the target.
        let mut state = spec.initial.clone();
        let mut v = klotski::core::CompactState::origin(spec.num_types());
        for step in outcome.plan.steps() {
            spec.apply_next(&mut state, &v, step.kind);
            v = v.advanced(step.kind);
        }
        assert_eq!(state, spec.target_state(), "{id}");
    }
}

#[test]
fn planned_migration_executes_cleanly() {
    let spec = spec(PresetId::B);
    let planner = AStarPlanner::default();
    let plan = planner.plan(&spec).unwrap().plan;
    let report = execute(&spec, &plan, &planner, &ExecutorConfig::default());
    assert!(report.completed, "{:?}", report.abort_reason);
    assert!(report.phases.iter().all(|p| p.safe));
    assert_eq!(report.phases.len(), plan.num_phases());
}

#[test]
fn dmag_capability_split_between_planners() {
    let spec = spec(PresetId::EDmag);
    assert!(spec.migration_type.changes_topology());
    assert!(AStarPlanner::default().plan(&spec).is_ok());
    assert!(DpPlanner::default().plan(&spec).is_ok());
    assert!(MrcPlanner::default().plan(&spec).is_err());
    assert!(JanusPlanner::default().plan(&spec).is_err());
}

#[test]
fn optimal_cost_is_stable_across_planner_configs() {
    let spec = spec(PresetId::A);
    let reference = AStarPlanner::default().plan(&spec).unwrap().cost;
    use klotski::core::cost::HeuristicMode;
    use klotski::core::EscMode;
    for esc in [EscMode::Compact, EscMode::FullTopology, EscMode::Off] {
        for heuristic in [HeuristicMode::Admissible, HeuristicMode::None] {
            for secondary in [true, false] {
                let planner = AStarPlanner {
                    esc,
                    heuristic,
                    secondary_priority: secondary,
                    ..AStarPlanner::default()
                };
                let cost = planner.plan(&spec).unwrap().cost;
                assert!(
                    (cost - reference).abs() < 1e-9,
                    "esc {esc:?} heuristic {heuristic:?} secondary {secondary}: {cost} vs {reference}"
                );
            }
        }
    }
}
