//! Operational-pipeline integration: executor fault injection, replanning,
//! forecasting, and the NPD interface.

use klotski::core::executor::{execute, ExecutorConfig};
use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::npd::convert::{attach_plan, npd_to_topology, region_to_npd};
use klotski::npd::Npd;
use klotski::routing::FunnelingModel;
use klotski::topology::presets::{self, PresetId};
use klotski::traffic::{DemandClass, SurgeEvent};

fn plan_and_spec(
    id: PresetId,
) -> (
    klotski::core::migration::MigrationSpec,
    klotski::core::MigrationPlan,
) {
    let spec =
        MigrationBuilder::for_preset(&presets::build_for_bench(id), &MigrationOptions::default())
            .unwrap();
    let plan = AStarPlanner::default().plan(&spec).unwrap().plan;
    (spec, plan)
}

#[test]
fn executor_survives_compound_failures() {
    let (spec, plan) = plan_and_spec(PresetId::B);
    let cfg = ExecutorConfig {
        seed: 9,
        failure_prob: 0.3,
        max_retries: 20,
        demand_growth_per_phase: 0.01,
        surges: vec![SurgeEvent::on_class(0, 2, 1.1, DemandClass::RswToEbb)],
        external_maintenance_prob: 0.5,
        replan_on_violation: true,
    };
    let report = execute(&spec, &plan, &AStarPlanner::default(), &cfg);
    assert!(
        report.completed || report.abort_reason.is_some(),
        "executor must terminate decisively"
    );
    if report.completed {
        assert!(!report.phases.is_empty());
    }
}

#[test]
fn heavy_growth_forces_replanning_or_explicit_abort() {
    let (spec, plan) = plan_and_spec(PresetId::A);
    let cfg = ExecutorConfig {
        demand_growth_per_phase: 0.25,
        ..ExecutorConfig::default()
    };
    let report = execute(&spec, &plan, &AStarPlanner::default(), &cfg);
    // Under +25%/phase something must give: either the plan is revised or
    // execution stops with an infeasibility reason.
    assert!(report.replans > 0 || report.abort_reason.is_some() || report.completed);
}

#[test]
fn replanning_disabled_aborts_instead() {
    let (spec, plan) = plan_and_spec(PresetId::A);
    let with = execute(
        &spec,
        &plan,
        &AStarPlanner::default(),
        &ExecutorConfig {
            demand_growth_per_phase: 0.25,
            replan_on_violation: true,
            ..ExecutorConfig::default()
        },
    );
    let without = execute(
        &spec,
        &plan,
        &AStarPlanner::default(),
        &ExecutorConfig {
            demand_growth_per_phase: 0.25,
            replan_on_violation: false,
            ..ExecutorConfig::default()
        },
    );
    // If the growth invalidated the plan, disabling replanning must turn
    // the revision into an abort.
    if with.replans > 0 {
        assert!(!without.completed);
        assert!(without
            .abort_reason
            .unwrap()
            .contains("replanning disabled"));
    }
}

#[test]
fn funneling_enabled_specs_still_plan() {
    // §7.2: production planning inflates related circuits for drain
    // asynchrony. Plans must exist (possibly longer) with the model on.
    let preset = presets::build(PresetId::A);
    let plain = MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default()).unwrap();
    let opts = MigrationOptions {
        funneling: FunnelingModel {
            headroom_factor: 1.15,
        },
        ..MigrationOptions::default()
    };
    let stressed = MigrationBuilder::hgrid_v1_to_v2(&preset, &opts).unwrap();
    let base = AStarPlanner::default().plan(&plain).unwrap().cost;
    let hard = AStarPlanner::default().plan(&stressed).unwrap().cost;
    assert!(
        hard >= base,
        "funneling headroom can only constrain further"
    );
}

#[test]
fn npd_pipeline_end_to_end() {
    // NPD in -> topology -> plan -> phases in NPD out, all through JSON.
    let preset = presets::build(PresetId::A);
    let doc = region_to_npd(&preset.config);
    let json = doc.to_json_pretty().unwrap();
    let parsed = Npd::from_json(&json).unwrap();
    let (topo, _) = npd_to_topology(&parsed).unwrap();
    assert_eq!(topo.num_switches(), preset.topology.num_switches());

    let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default()).unwrap();
    let plan = AStarPlanner::default().plan(&spec).unwrap().plan;
    let mut shipped = parsed;
    attach_plan(&mut shipped, &spec, &plan);
    assert_eq!(shipped.phases.len(), plan.num_phases());
    let final_doc = Npd::from_json(&shipped.to_json_pretty().unwrap()).unwrap();
    assert_eq!(final_doc.phases, shipped.phases);
}

#[test]
fn residual_specs_are_well_formed_mid_migration() {
    let (spec, plan) = plan_and_spec(PresetId::A);
    // Execute the first phase by hand, then replan the rest.
    let phases = plan.phases();
    let mut state = spec.initial.clone();
    let mut v = klotski::core::CompactState::origin(spec.num_types());
    for _ in &phases[0].blocks {
        spec.apply_next(&mut state, &v, phases[0].kind);
        v = v.advanced(phases[0].kind);
    }
    let residual = spec.residual(&v, state, spec.demands.clone());
    assert_eq!(
        residual.num_blocks(),
        spec.num_blocks() - phases[0].blocks.len()
    );
    let rest = AStarPlanner::default().plan(&residual).unwrap();
    klotski::core::plan::validate_plan(&residual, &rest.plan).unwrap();
}
