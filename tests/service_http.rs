//! End-to-end tests of the planning daemon over real sockets, including
//! the tentpole acceptance criterion: a plan served over HTTP is
//! byte-identical to the file the `klotski` CLI writes for the same NPD.

use klotski::npd::api::{AcceptedResponse, AuditResponse, JobState, JobStatusResponse};
use klotski::npd::convert::region_to_npd;
use klotski::npd::Npd;
use klotski::service::{Service, ServiceConfig};
use klotski::topology::presets::{self, PresetId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Sends one HTTP/1.1 request and returns (status, headers, body).
fn http(addr: SocketAddr, head: &str, body: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let msg = format!("{head}\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    stream.write_all(msg.as_bytes()).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    let split = reply
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8(reply[..split].to_vec()).unwrap();
    let body = reply[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn npd_json(id: PresetId) -> String {
    region_to_npd(&presets::config(id))
        .to_json_pretty()
        .unwrap()
}

/// Tentpole acceptance: the daemon's plan response must be byte-for-byte
/// the file `klotski plan -o` writes, exercising the real CLI binary.
#[test]
fn served_plan_is_byte_identical_to_cli_output() {
    let npd = npd_json(PresetId::A);
    let dir = std::env::temp_dir().join(format!("klotski-svc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("a.json");
    let output = dir.join("a_plan.json");
    std::fs::write(&input, &npd).unwrap();

    let cli = std::process::Command::new(env!("CARGO_BIN_EXE_klotski"))
        .args([
            "plan",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
        ])
        .output()
        .expect("run CLI");
    assert!(
        cli.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_bytes = std::fs::read(&output).unwrap();

    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let (status, headers, served_bytes) = http(
        service.local_addr(),
        "POST /v1/plan HTTP/1.1\r\nHost: t",
        &npd,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&served_bytes));
    assert_eq!(header(&headers, "x-klotski-cache"), Some("miss"));
    assert_eq!(
        served_bytes, cli_bytes,
        "served plan differs from CLI plan for the same NPD"
    );

    // And a second submission serves the identical bytes from cache.
    let (status, headers, cached_bytes) = http(
        service.local_addr(),
        "POST /v1/plan HTTP/1.1\r\nHost: t",
        &npd,
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-klotski-cache"), Some("hit"));
    assert_eq!(cached_bytes, cli_bytes);

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `ensemble` query option plans against a traffic ensemble: the
/// response is byte-identical to the CLI's `--ensemble` output, and an
/// invalid spec is rejected up front with a 400.
#[test]
fn ensemble_query_option_matches_cli_and_validates() {
    let npd = npd_json(PresetId::A);
    let dir = std::env::temp_dir().join(format!("klotski-svc-ens-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("a.json");
    let output = dir.join("a_ens_plan.json");
    std::fs::write(&input, &npd).unwrap();

    let cli = std::process::Command::new(env!("CARGO_BIN_EXE_klotski"))
        .args([
            "plan",
            input.to_str().unwrap(),
            "--ensemble",
            "2@11",
            "-o",
            output.to_str().unwrap(),
        ])
        .output()
        .expect("run CLI");
    assert!(
        cli.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_bytes = std::fs::read(&output).unwrap();

    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let (status, _, served_bytes) = http(
        service.local_addr(),
        "POST /v1/plan?ensemble=2@11 HTTP/1.1\r\nHost: t",
        &npd,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&served_bytes));
    assert_eq!(
        served_bytes, cli_bytes,
        "served ensemble plan differs from CLI plan for the same NPD"
    );

    // Malformed and semantically invalid ensembles are rejected before any
    // planning (or cache lookup) happens.
    for bad in ["ensemble=0@1", "ensemble=nope"] {
        let (status, _, body) = http(
            service.local_addr(),
            &format!("POST /v1/plan?{bad} HTTP/1.1\r\nHost: t"),
            &npd,
        );
        assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    }

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Async submission: 202 + job id, poll to Done, fetch the result, and the
/// audit endpoint returns a safety timeline consistent with the plan.
#[test]
fn async_jobs_and_audit_timeline() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        cache_capacity: 0, // every request really plans
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = npd_json(PresetId::A);

    let (status, _, body) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let accepted: AcceptedResponse =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    let summary = loop {
        let (status, _, body) = http(
            addr,
            &format!("GET /v1/jobs/{} HTTP/1.1\r\nHost: t", accepted.job),
            "",
        );
        assert_eq!(status, 200);
        let poll: JobStatusResponse =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        match poll.state {
            JobState::Done => break poll.summary.expect("summary"),
            JobState::Failed => panic!("job failed: {:?}", poll.error),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
        assert!(Instant::now() < deadline, "job stuck");
    };
    assert!(summary.phases > 0);
    assert_eq!(summary.planner, "klotski-a*");

    let (status, _, body) = http(
        addr,
        &format!("GET /v1/jobs/{}/result HTTP/1.1\r\nHost: t", accepted.job),
        "",
    );
    assert_eq!(status, 200);
    let shipped = Npd::from_json(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(shipped.phases.len(), summary.phases);

    let (status, _, body) = http(addr, "POST /v1/audit HTTP/1.1\r\nHost: t", &npd);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let audit: AuditResponse = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(audit.audit.phases.len(), summary.phases);
    // Every phase of a valid plan stays under θ.
    assert!(audit.audit.peak_utilization() <= audit.audit.theta + 1e-9);

    service.shutdown();
}

/// Backpressure: with no workers draining, the bounded queue fills and the
/// next submission is shed with 503 + Retry-After, never an error or hang.
#[test]
fn overfilled_queue_sheds_load_with_503() {
    let service = Service::start(ServiceConfig {
        workers: 0,
        queue_depth: 3,
        cache_capacity: 0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = npd_json(PresetId::A);

    for _ in 0..3 {
        let (status, _, _) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 202);
    }
    for _ in 0..2 {
        let (status, headers, body) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
        assert_eq!(header(&headers, "retry-after"), Some("1"));
    }

    let (status, _, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("klotski_rejected_busy_total 2"), "{text}");
    assert!(text.contains("klotski_queue_depth 3"), "{text}");

    service.shutdown();
}

/// Sustained concurrency: 32 simultaneous audit submissions against a
/// bounded service all resolve — 200 for the admitted, 503 for the shed,
/// nothing hangs or panics (ISSUE acceptance: bounded memory under ≥32
/// concurrent audits).
#[test]
fn thirty_two_concurrent_audits_resolve_bounded() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 8,
        cache_capacity: 16,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = std::sync::Arc::new(npd_json(PresetId::A));

    let clients: Vec<_> = (0..32)
        .map(|_| {
            let npd = std::sync::Arc::clone(&npd);
            std::thread::spawn(move || {
                let (status, _, _) = http(addr, "POST /v1/audit HTTP/1.1\r\nHost: t", &npd);
                status
            })
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 503),
        "unexpected statuses: {statuses:?}"
    );
    assert!(statuses.contains(&200), "no audit succeeded: {statuses:?}");

    // The service is still healthy afterwards.
    let (status, _, body) = http(addr, "GET /healthz HTTP/1.1\r\nHost: t", "");
    assert_eq!((status, body.as_slice()), (200, b"ok".as_slice()));

    service.shutdown();
}

/// Graceful shutdown drains admitted jobs and then refuses new ones.
#[test]
fn shutdown_drains_inflight_work() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        cache_capacity: 0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = npd_json(PresetId::A);

    // A synchronous client whose job must be completed by the drain.
    let waiter = {
        let npd = npd.clone();
        std::thread::spawn(move || http(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd))
    };
    // Give it a moment to be admitted before we start draining.
    std::thread::sleep(Duration::from_millis(50));
    service.shutdown();

    let (status, _, body) = waiter.join().unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert!(Npd::from_json(std::str::from_utf8(&body).unwrap()).is_ok());

    // The listener is gone (or resets) after shutdown: a fresh submission
    // cannot succeed.
    assert!(
        TcpStream::connect(addr).is_err()
            || http(addr, "GET /healthz HTTP/1.1\r\nHost: t", "").0 != 200
    );
}
