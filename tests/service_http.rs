//! End-to-end tests of the planning daemon over real sockets, including
//! the tentpole acceptance criterion: a plan served over HTTP is
//! byte-identical to the file the `klotski` CLI writes for the same NPD.

use klotski::npd::api::{AcceptedResponse, AuditResponse, JobState, JobStatusResponse};
use klotski::npd::convert::region_to_npd;
use klotski::npd::Npd;
use klotski::service::{Service, ServiceConfig};
use klotski::topology::presets::{self, PresetId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Sends one HTTP/1.1 request and returns (status, headers, body).
fn http(addr: SocketAddr, head: &str, body: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let msg = format!("{head}\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    stream.write_all(msg.as_bytes()).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    let split = reply
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8(reply[..split].to_vec()).unwrap();
    let body = reply[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn npd_json(id: PresetId) -> String {
    region_to_npd(&presets::config(id))
        .to_json_pretty()
        .unwrap()
}

/// Tentpole acceptance: the daemon's plan response must be byte-for-byte
/// the file `klotski plan -o` writes, exercising the real CLI binary.
#[test]
fn served_plan_is_byte_identical_to_cli_output() {
    let npd = npd_json(PresetId::A);
    let dir = std::env::temp_dir().join(format!("klotski-svc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("a.json");
    let output = dir.join("a_plan.json");
    std::fs::write(&input, &npd).unwrap();

    let cli = std::process::Command::new(env!("CARGO_BIN_EXE_klotski"))
        .args([
            "plan",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
        ])
        .output()
        .expect("run CLI");
    assert!(
        cli.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_bytes = std::fs::read(&output).unwrap();

    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let (status, headers, served_bytes) = http(
        service.local_addr(),
        "POST /v1/plan HTTP/1.1\r\nHost: t",
        &npd,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&served_bytes));
    assert_eq!(header(&headers, "x-klotski-cache"), Some("miss"));
    assert_eq!(
        served_bytes, cli_bytes,
        "served plan differs from CLI plan for the same NPD"
    );

    // And a second submission serves the identical bytes from cache.
    let (status, headers, cached_bytes) = http(
        service.local_addr(),
        "POST /v1/plan HTTP/1.1\r\nHost: t",
        &npd,
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-klotski-cache"), Some("hit"));
    assert_eq!(cached_bytes, cli_bytes);

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `ensemble` query option plans against a traffic ensemble: the
/// response is byte-identical to the CLI's `--ensemble` output, and an
/// invalid spec is rejected up front with a 400.
#[test]
fn ensemble_query_option_matches_cli_and_validates() {
    let npd = npd_json(PresetId::A);
    let dir = std::env::temp_dir().join(format!("klotski-svc-ens-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("a.json");
    let output = dir.join("a_ens_plan.json");
    std::fs::write(&input, &npd).unwrap();

    let cli = std::process::Command::new(env!("CARGO_BIN_EXE_klotski"))
        .args([
            "plan",
            input.to_str().unwrap(),
            "--ensemble",
            "2@11",
            "-o",
            output.to_str().unwrap(),
        ])
        .output()
        .expect("run CLI");
    assert!(
        cli.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_bytes = std::fs::read(&output).unwrap();

    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let (status, _, served_bytes) = http(
        service.local_addr(),
        "POST /v1/plan?ensemble=2@11 HTTP/1.1\r\nHost: t",
        &npd,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&served_bytes));
    assert_eq!(
        served_bytes, cli_bytes,
        "served ensemble plan differs from CLI plan for the same NPD"
    );

    // Malformed and semantically invalid ensembles are rejected before any
    // planning (or cache lookup) happens.
    for bad in ["ensemble=0@1", "ensemble=nope"] {
        let (status, _, body) = http(
            service.local_addr(),
            &format!("POST /v1/plan?{bad} HTTP/1.1\r\nHost: t"),
            &npd,
        );
        assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    }

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Async submission: 202 + job id, poll to Done, fetch the result, and the
/// audit endpoint returns a safety timeline consistent with the plan.
#[test]
fn async_jobs_and_audit_timeline() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        cache_capacity: 0, // every request really plans
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = npd_json(PresetId::A);

    let (status, _, body) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let accepted: AcceptedResponse =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    let summary = loop {
        let (status, _, body) = http(
            addr,
            &format!("GET /v1/jobs/{} HTTP/1.1\r\nHost: t", accepted.job),
            "",
        );
        assert_eq!(status, 200);
        let poll: JobStatusResponse =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        match poll.state {
            JobState::Done => break poll.summary.expect("summary"),
            JobState::Failed => panic!("job failed: {:?}", poll.error),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
        assert!(Instant::now() < deadline, "job stuck");
    };
    assert!(summary.phases > 0);
    assert_eq!(summary.planner, "klotski-a*");

    let (status, _, body) = http(
        addr,
        &format!("GET /v1/jobs/{}/result HTTP/1.1\r\nHost: t", accepted.job),
        "",
    );
    assert_eq!(status, 200);
    let shipped = Npd::from_json(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(shipped.phases.len(), summary.phases);

    let (status, _, body) = http(addr, "POST /v1/audit HTTP/1.1\r\nHost: t", &npd);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let audit: AuditResponse = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(audit.audit.phases.len(), summary.phases);
    // Every phase of a valid plan stays under θ.
    assert!(audit.audit.peak_utilization() <= audit.audit.theta + 1e-9);

    service.shutdown();
}

/// Backpressure: with no workers draining, the bounded queue fills and the
/// next submission is shed with 503 + Retry-After, never an error or hang.
#[test]
fn overfilled_queue_sheds_load_with_503() {
    let service = Service::start(ServiceConfig {
        workers: 0,
        queue_depth: 3,
        cache_capacity: 0,
        // Identical submissions must each occupy a queue slot here, so
        // singleflight coalescing is off for this test.
        coalesce: false,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = npd_json(PresetId::A);

    for _ in 0..3 {
        let (status, _, _) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 202);
    }
    for _ in 0..2 {
        let (status, headers, body) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
        assert_eq!(header(&headers, "retry-after"), Some("1"));
    }

    let (status, _, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("klotski_rejected_busy_total 2"), "{text}");
    assert!(text.contains("klotski_queue_depth 3"), "{text}");

    service.shutdown();
}

/// Sustained concurrency: 32 simultaneous audit submissions against a
/// bounded service all resolve — 200 for the admitted, 503 for the shed,
/// nothing hangs or panics (ISSUE acceptance: bounded memory under ≥32
/// concurrent audits).
#[test]
fn thirty_two_concurrent_audits_resolve_bounded() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 8,
        cache_capacity: 16,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = std::sync::Arc::new(npd_json(PresetId::A));

    let clients: Vec<_> = (0..32)
        .map(|_| {
            let npd = std::sync::Arc::clone(&npd);
            std::thread::spawn(move || {
                let (status, _, _) = http(addr, "POST /v1/audit HTTP/1.1\r\nHost: t", &npd);
                status
            })
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 503),
        "unexpected statuses: {statuses:?}"
    );
    assert!(statuses.contains(&200), "no audit succeeded: {statuses:?}");

    // The service is still healthy afterwards.
    let (status, _, body) = http(addr, "GET /healthz HTTP/1.1\r\nHost: t", "");
    assert_eq!((status, body.as_slice()), (200, b"ok".as_slice()));

    service.shutdown();
}

/// Subscribes to a job's event stream and returns the dechunked SSE text
/// after the server closes the connection at the terminal event.
fn sse_events(addr: SocketAddr, job: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let msg = format!("GET /v1/jobs/{job}/events HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(msg.as_bytes()).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    let reply = String::from_utf8(reply).unwrap();
    let (head, raw) = reply.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let mut out = String::new();
    let mut rest = raw;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
    out
}

/// Coalescing determinism: concurrent identical submissions ride exactly
/// one pipeline execution — the leader's — and every follower (including
/// an SSE subscriber attached mid-flight) observes byte-identical output.
#[test]
fn concurrent_identical_requests_coalesce_onto_one_execution() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = std::sync::Arc::new(npd_json(PresetId::A));

    // Occupy the single worker with a scenario run, so the plan leader
    // below stays queued while the followers and SSE subscriber attach.
    let scenario = serde_json::to_string(&klotski::controller::Scenario::sample()).unwrap();
    let (status, _, _) = http(addr, "POST /v1/run?wait=0 HTTP/1.1\r\nHost: t", &scenario);
    assert_eq!(status, 202);

    let (status, headers, body) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    assert_eq!(header(&headers, "x-klotski-coalesce"), Some("leader"));
    let leader: AcceptedResponse =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();

    // An async duplicate is answered with the leader's own job id.
    let (status, headers, body) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
    assert_eq!(status, 202);
    assert_eq!(header(&headers, "x-klotski-coalesce"), Some("follower"));
    let dup: AcceptedResponse = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(dup.job, leader.job, "follower must share the leader's job");

    // Synchronous duplicates block on the shared job; the SSE subscriber
    // attaches to the same job id while it is still queued.
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let npd = std::sync::Arc::clone(&npd);
            std::thread::spawn(move || http(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd))
        })
        .collect();
    let subscriber = {
        let job = leader.job.clone();
        std::thread::spawn(move || sse_events(addr, &job))
    };

    let bodies: Vec<Vec<u8>> = waiters
        .into_iter()
        .map(|w| {
            let (status, headers, body) = w.join().unwrap();
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
            assert_eq!(header(&headers, "x-klotski-coalesce"), Some("follower"));
            body
        })
        .collect();
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "coalesced follower bodies differ"
    );
    let events = subscriber.join().unwrap();
    assert!(events.contains("event: end\n"), "{events}");

    let (status, _, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("klotski_pipeline_executions_total 1"),
        "{text}"
    );
    assert!(text.contains("klotski_coalesce_leaders_total 1"), "{text}");
    assert!(
        text.contains("klotski_coalesce_followers_total 4"),
        "{text}"
    );

    service.shutdown();
}

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn serve_daemon(port: u16, state_dir: &std::path::Path) -> std::process::Child {
    std::process::Command::new(env!("CARGO_BIN_EXE_klotski"))
        .args([
            "serve",
            "--addr",
            &format!("127.0.0.1:{port}"),
            "--workers",
            "1",
            "--state-dir",
            state_dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn daemon")
}

fn wait_healthy(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while TcpStream::connect(addr).is_err() {
        assert!(
            Instant::now() < deadline,
            "daemon did not come up on {addr}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let (status, _, _) = http(addr, "GET /healthz HTTP/1.1\r\nHost: t", "");
    assert_eq!(status, 200);
}

/// Crash recovery: kill the real daemon mid-job, restart it on the same
/// `--state-dir`, and the journal replay must re-serve completed digests
/// from cache (byte-identical, no re-planning) and re-run the incomplete
/// job to the same bytes the CLI produces — even with a torn record at
/// the journal's tail.
#[test]
fn killed_daemon_recovers_completed_and_pending_work_from_its_journal() {
    let npd_a = npd_json(PresetId::A);
    // A second document with a distinct digest but the same planning cost:
    // preset A under a different tenant name.
    let npd_b = {
        let mut npd = region_to_npd(&presets::config(PresetId::A));
        npd.name = "crash-recovery-pending".into();
        npd.to_json_pretty().unwrap()
    };
    let dir = std::env::temp_dir().join(format!("klotski-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let state_dir = dir.join("state");
    std::fs::create_dir_all(&state_dir).unwrap();

    // Reference bytes for the job the recovered daemon must re-run.
    let input = dir.join("b.json");
    let output = dir.join("b_plan.json");
    std::fs::write(&input, &npd_b).unwrap();
    let cli = std::process::Command::new(env!("CARGO_BIN_EXE_klotski"))
        .args([
            "plan",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
        ])
        .output()
        .expect("run CLI");
    assert!(
        cli.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_b = std::fs::read(&output).unwrap();

    let port = free_port();
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let mut child = serve_daemon(port, &state_dir);
    wait_healthy(addr);

    // One completed plan (journaled artifact) ...
    let (status, headers, cold_a) = http(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd_a);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&cold_a));
    assert_eq!(header(&headers, "x-klotski-cache"), Some("miss"));

    // ... and one admitted-but-unfinished job: kill the daemon mid-plan.
    let (status, _, body) = http(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd_b);
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    child.kill().unwrap();
    child.wait().unwrap();

    // A torn frame at the crash point must not poison replay: the tail is
    // truncated at the last good record.
    let mut journal = std::fs::OpenOptions::new()
        .append(true)
        .open(state_dir.join("journal.log"))
        .unwrap();
    journal.write_all(&[0x2a, 0x00, 0x00]).unwrap();
    drop(journal);

    let mut child = serve_daemon(port, &state_dir);
    wait_healthy(addr);

    // Completed digests are re-served from cache without re-planning.
    let (status, headers, warm_a) = http(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd_a);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&warm_a));
    assert_eq!(header(&headers, "x-klotski-cache"), Some("hit"));
    assert_eq!(warm_a, cold_a, "recovered plan differs from cold plan");

    // The interrupted job was re-admitted at startup; a duplicate
    // submission coalesces onto it (or hits its finished artifact) and
    // lands on exactly the bytes the CLI computes for the same NPD.
    let (status, _, warm_b) = http(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd_b);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&warm_b));
    assert_eq!(warm_b, cli_b, "replayed job diverged from the CLI plan");

    let (status, _, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("klotski_state_replayed_artifacts 1"),
        "{text}"
    );
    assert!(text.contains("klotski_state_replayed_jobs 1"), "{text}");

    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful shutdown drains admitted jobs and then refuses new ones.
#[test]
fn shutdown_drains_inflight_work() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        cache_capacity: 0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let addr = service.local_addr();
    let npd = npd_json(PresetId::A);

    // A synchronous client whose job must be completed by the drain.
    let waiter = {
        let npd = npd.clone();
        std::thread::spawn(move || http(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd))
    };
    // Give it a moment to be admitted before we start draining.
    std::thread::sleep(Duration::from_millis(50));
    service.shutdown();

    let (status, _, body) = waiter.join().unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert!(Npd::from_json(std::str::from_utf8(&body).unwrap()).is_ok());

    // The listener is gone (or resets) after shutdown: a fresh submission
    // cannot succeed.
    assert!(
        TcpStream::connect(addr).is_err()
            || http(addr, "GET /healthz HTTP/1.1\r\nHost: t", "").0 != 200
    );
}
