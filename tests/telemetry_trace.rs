//! End-to-end trace test: `klotski plan --trace --stats` through the real
//! binary produces a schema-valid JSONL trace with the expected span
//! hierarchy, and the `klotski trace` subcommand accepts it.

use klotski::telemetry::{parse_line, validate_trace, Record};
use std::process::Command;

fn klotski(args: &[&str], dir: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_klotski"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

#[test]
fn plan_trace_round_trips_through_the_validator() {
    let dir = std::env::temp_dir().join(format!("klotski-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let out = klotski(&["export", "A", "a.json"], &dir);
    assert!(out.status.success(), "{out:?}");

    let out = klotski(&["plan", "a.json", "--trace", "t.jsonl", "--stats"], &dir);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "search statistics",
        "states visited",
        "states pruned",
        "esc cache hits",
        "hit rate",
        "satcheck time",
        "total planning",
        "trace written to t.jsonl",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }

    let text = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
    let summary = validate_trace(&text).expect("trace validates");
    assert!(
        summary.spans >= 3,
        "cli -> pipeline -> planner: {summary:?}"
    );
    assert_eq!(summary.roots, 1, "single root span: {summary:?}");

    // The span chain must be cli.plan -> pipeline.plan -> astar.plan.
    let mut spans = std::collections::HashMap::new();
    for line in text.lines() {
        if let Ok(Record::Span {
            name, id, parent, ..
        }) = parse_line(line)
        {
            spans.insert(name, (id, parent));
        }
    }
    let (cli_id, cli_parent) = spans["cli.plan"];
    let (pipe_id, pipe_parent) = spans["pipeline.plan"];
    let (_, astar_parent) = spans["astar.plan"];
    assert_eq!(cli_parent, 0);
    assert_eq!(pipe_parent, cli_id);
    assert_eq!(astar_parent, pipe_id);

    // The trace subcommand agrees.
    let out = klotski(&["trace", "t.jsonl"], &dir);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("trace ok:"), "{stdout}");

    // And rejects a corrupted trace with a nonzero exit.
    std::fs::write(dir.join("bad.jsonl"), "not json\n").unwrap();
    let out = klotski(&["trace", "bad.jsonl"], &dir);
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}
