//! Cross-crate invariant properties: drain/undrain algebra, symmetry of
//! the feasibility structure, and heuristic-bound relationships.

use klotski::core::cost::HeuristicMode;
use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::satcheck::{EscMode, SatChecker};
use klotski::core::{CompactState, CostModel};
use klotski::topology::presets::{self, PresetId};
use klotski::topology::{NetState, SwitchId};
use proptest::prelude::*;

fn spec() -> klotski::core::migration::MigrationSpec {
    MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &MigrationOptions::default())
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Draining a random switch set and undraining it in any order restores
    /// the original activation state (when the peers stayed up).
    #[test]
    fn prop_drain_undrain_is_involutive(
        picks in proptest::collection::vec(0usize..73, 1..8),
        reverse in prop::bool::ANY,
    ) {
        let preset = presets::build(PresetId::A);
        let topo = &preset.topology;
        let orig = NetState::all_up(topo);
        let mut state = orig.clone();
        let mut set: Vec<usize> = picks.clone();
        set.sort_unstable();
        set.dedup();
        for &i in &set {
            state.drain_switch(topo, SwitchId::from_index(i));
        }
        let restore: Vec<usize> = if reverse {
            set.iter().rev().copied().collect()
        } else {
            set.clone()
        };
        for &i in &restore {
            state.undrain_switch(topo, SwitchId::from_index(i));
        }
        // Circuits between two drained switches come back when the second
        // endpoint is undrained, so full restoration holds regardless of
        // order.
        prop_assert_eq!(state, orig);
    }

    /// Satisfiability is a pure function of the compact state: the checker
    /// gives the same verdict however the state was reached, across all
    /// cache modes.
    #[test]
    fn prop_satcheck_is_state_pure(
        d in 0u16..=3,
        u in 0u16..=6,
    ) {
        let spec = spec();
        let v = CompactState::from_counts(vec![d, u]);
        let state = spec.state_for(&v);
        let mut verdicts = Vec::new();
        for mode in [EscMode::Compact, EscMode::FullTopology, EscMode::Off] {
            let mut checker = SatChecker::new(&spec, mode);
            // Ask twice: cached answers must agree with fresh ones.
            let first = checker.check(&spec, &v, &state, None);
            let second = checker.check(&spec, &v, &state, None);
            prop_assert_eq!(first, second);
            verdicts.push(first);
        }
        prop_assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
    }

    /// The admissible heuristic never exceeds the literal Eq. 9 heuristic,
    /// and both are zero exactly at the target.
    #[test]
    fn prop_heuristic_ordering(
        remaining in proptest::collection::vec(0u16..6, 1..5),
        alpha in 0.0f64..=1.0,
        last in 0u8..5,
    ) {
        let model = CostModel::new(alpha);
        let last = (usize::from(last) < remaining.len())
            .then_some(klotski::core::ActionTypeId(last));
        let adm = model.heuristic(HeuristicMode::Admissible, &remaining, last);
        let paper = model.heuristic(HeuristicMode::PaperEq9, &remaining, last);
        prop_assert!(adm <= paper + 1e-12);
        if remaining.iter().all(|&n| n == 0) {
            prop_assert_eq!(adm, 0.0);
            prop_assert_eq!(paper, 0.0);
        }
    }

    /// Residual specs compose: planning the residual after k canonical
    /// actions reaches the same final activation state as the original.
    #[test]
    fn prop_residual_reaches_same_target(k in 0usize..4) {
        let spec = spec();
        let mut v = CompactState::origin(spec.num_types());
        let mut state = spec.initial.clone();
        // Advance k drain actions (always available first in this spec).
        let a = klotski::core::ActionTypeId(0);
        for _ in 0..k.min(spec.target_counts.count(a) as usize) {
            spec.apply_next(&mut state, &v, a);
            v = v.advanced(a);
        }
        let residual = spec.residual(&v, state, spec.demands.clone());
        prop_assert_eq!(residual.target_state(), spec.target_state());
    }
}

#[test]
fn funneling_cache_distinguishes_last_action_only_when_enabled() {
    let plain = spec();
    assert!(!plain.funneling.is_enabled());
    let mut checker = SatChecker::new(&plain, EscMode::Compact);
    let v = CompactState::from_counts(vec![1, 0]);
    let state = plain.state_for(&v);
    checker.check(&plain, &v, &state, Some(klotski::core::ActionTypeId(0)));
    checker.check(&plain, &v, &state, None);
    // Without funneling the last action must NOT split the cache.
    assert_eq!(checker.cache_len(), 1);
}
