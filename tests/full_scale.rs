//! Paper-scale smoke test: topology E at its full Table 3 size
//! (~10,600 switches, ~154,000 circuits).
//!
//! Ignored by default because it builds the O(100k)-circuit union graph and
//! runs a complete A\* plan (minutes in debug). Run with:
//!
//! ```text
//! KLOTSKI_FULL_SCALE=1 cargo test --release --test full_scale -- --ignored
//! ```

use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::topology::presets::{self, PresetId};

#[test]
#[ignore = "paper-scale; run with KLOTSKI_FULL_SCALE=1 --release -- --ignored"]
fn full_scale_e_plans_in_minutes() {
    assert!(
        presets::full_scale_requested(),
        "set KLOTSKI_FULL_SCALE=1 for this test"
    );
    let preset = presets::build(PresetId::E);
    assert!(preset.topology.num_switches() > 10_000);
    assert!(preset.topology.num_circuits() > 100_000);

    let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default()).unwrap();
    assert!(spec.num_switch_actions() > 600, "Table 3: ~700 actions");

    let start = std::time::Instant::now();
    let outcome = AStarPlanner::default().plan(&spec).unwrap();
    let elapsed = start.elapsed();
    validate_plan(&spec, &outcome.plan).unwrap();

    // The paper's headline: "Klotski-A* uses less than 4 minutes to
    // generate a plan for the largest topology" (§6.1).
    assert!(
        elapsed < std::time::Duration::from_secs(240),
        "planning took {elapsed:?}"
    );
}
