//! Optimality certification: the brute-force oracle confirms that the
//! informed planners return true optima across cost models, utilization
//! bounds, and demand seeds.

use klotski::baselines::BruteForcePlanner;
use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::planner::{AStarPlanner, DpPlanner, Planner};
use klotski::core::CostModel;
use klotski::topology::presets::{self, PresetId};
use klotski::traffic::DemandGenConfig;

fn spec_with(opts: MigrationOptions) -> klotski::core::migration::MigrationSpec {
    MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &opts).unwrap()
}

#[test]
fn oracle_certifies_across_theta() {
    for theta in [0.70, 0.75, 0.85, 0.95] {
        let spec = spec_with(MigrationOptions {
            theta,
            ..MigrationOptions::default()
        });
        let brute = BruteForcePlanner::default().plan(&spec).unwrap().cost;
        let astar = AStarPlanner::default().plan(&spec).unwrap().cost;
        let dp = DpPlanner::default().plan(&spec).unwrap().cost;
        assert!((brute - astar).abs() < 1e-9, "theta {theta}: A* suboptimal");
        assert!((brute - dp).abs() < 1e-9, "theta {theta}: DP suboptimal");
    }
}

#[test]
fn oracle_certifies_across_alpha() {
    let spec = spec_with(MigrationOptions::default());
    for alpha in [0.0, 0.1, 0.5, 0.9, 1.0] {
        let brute = BruteForcePlanner {
            cost: CostModel::new(alpha),
            ..BruteForcePlanner::default()
        }
        .plan(&spec)
        .unwrap()
        .cost;
        let astar = AStarPlanner::with_alpha(alpha).plan(&spec).unwrap().cost;
        let dp = DpPlanner::with_alpha(alpha).plan(&spec).unwrap().cost;
        assert!((brute - astar).abs() < 1e-9, "alpha {alpha}: A* suboptimal");
        assert!((brute - dp).abs() < 1e-9, "alpha {alpha}: DP suboptimal");
    }
}

#[test]
fn oracle_certifies_across_demand_seeds() {
    for seed in [1, 7, 99, 1234] {
        let spec = spec_with(MigrationOptions {
            demand_cfg: DemandGenConfig {
                seed,
                ..DemandGenConfig::default()
            },
            ..MigrationOptions::default()
        });
        let brute = BruteForcePlanner::default().plan(&spec).unwrap().cost;
        let astar = AStarPlanner::default().plan(&spec).unwrap().cost;
        assert!((brute - astar).abs() < 1e-9, "seed {seed}: A* suboptimal");
    }
}

#[test]
fn oracle_certifies_block_scales() {
    for scale in [1.0, 2.0] {
        let spec = spec_with(MigrationOptions {
            block_scale: scale,
            ..MigrationOptions::default()
        });
        let brute = BruteForcePlanner::default().plan(&spec).unwrap().cost;
        let astar = AStarPlanner::default().plan(&spec).unwrap().cost;
        let dp = DpPlanner::default().plan(&spec).unwrap().cost;
        assert!((brute - astar).abs() < 1e-9, "scale {scale}: A* suboptimal");
        assert!((brute - dp).abs() < 1e-9, "scale {scale}: DP suboptimal");
    }
}

#[test]
fn oracle_certifies_dmag() {
    // A DMAG-shaped instance small enough for the oracle: shrink the MA
    // count via a custom preset is heavy, so certify at bench scale with a
    // generous budget instead (16 blocks -> fine for DFS with pruning).
    let preset = presets::build_for_bench(PresetId::EDmag);
    let spec = MigrationBuilder::dmag(&preset, &MigrationOptions::default()).unwrap();
    let brute = BruteForcePlanner::default().plan(&spec).unwrap().cost;
    let astar = AStarPlanner::default().plan(&spec).unwrap().cost;
    assert!((brute - astar).abs() < 1e-9, "DMAG: A* suboptimal");
}
