//! Umbrella crate re-exporting the full Klotski workspace API.
pub use klotski_baselines as baselines;
pub use klotski_controller as controller;
pub use klotski_core as core;
pub use klotski_npd as npd;
pub use klotski_parallel as parallel;
pub use klotski_routing as routing;
pub use klotski_service as service;
pub use klotski_telemetry as telemetry;
pub use klotski_topology as topology;
pub use klotski_traffic as traffic;
