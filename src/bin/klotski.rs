//! `klotski` — command-line migration planner.
//!
//! ```text
//! klotski export <preset> <out.json>        # write a region as NPD
//! klotski plan <npd.json> [-o out.json]     # plan the migration an NPD implies
//! klotski audit <preset>                    # plan + per-phase safety audit
//! klotski presets                           # list the built-in topologies
//! ```
//!
//! The `plan` subcommand mirrors the §5 EDP-Lite pipeline: NPD in, ordered
//! phase list out (attached to the NPD document when `-o` is given).

use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::opex::OpexModel;
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::core::report::audit_plan;
use klotski::core::BlockClass;
use klotski::npd::convert::{attach_plan, npd_to_region, region_to_npd};
use klotski::npd::Npd;
use klotski::topology::presets::{self, PresetId};
use klotski::topology::region::build_region;
use std::process::ExitCode;

fn parse_preset(name: &str) -> Option<PresetId> {
    PresetId::ALL
        .into_iter()
        .find(|id| id.to_string().eq_ignore_ascii_case(name))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  klotski presets\n  klotski export <preset> <out.json>\n  \
         klotski plan <npd.json> [-o out.json]\n  klotski audit <preset>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("presets") => {
            println!("built-in evaluation topologies (Table 3):");
            for id in PresetId::ALL {
                let p = presets::build_for_bench(id);
                println!(
                    "  {:<7} {:>6} switches {:>7} circuits",
                    id.to_string(),
                    p.topology.num_switches(),
                    p.topology.num_circuits()
                );
            }
            ExitCode::SUCCESS
        }
        Some("export") if args.len() == 3 => {
            let Some(id) = parse_preset(&args[1]) else {
                eprintln!("unknown preset {:?}", args[1]);
                return ExitCode::from(2);
            };
            let cfg = presets::config(id);
            let npd = region_to_npd(&cfg);
            match npd.to_json_pretty() {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&args[2], json) {
                        eprintln!("cannot write {}: {e}", args[2]);
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {} ({})", args[2], npd.name);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("plan") if args.len() >= 2 => {
            let json = match std::fs::read_to_string(&args[1]) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let npd = match Npd::from_json(&json) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("invalid NPD: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cfg = match npd_to_region(&npd) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("NPD conversion failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (topology, handles) = build_region(&cfg);
            let preset_like = klotski::topology::presets::Preset {
                id: PresetId::A, // placeholder tag; planning reads topology + handles
                config: cfg,
                topology,
                handles,
            };
            let spec =
                match MigrationBuilder::for_preset(&preset_like, &MigrationOptions::default()) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cannot build migration: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            let outcome = match AStarPlanner::default().plan(&spec) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("planning failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = validate_plan(&spec, &outcome.plan) {
                eprintln!("internal error: produced plan failed validation: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "{}: cost {} ({} phases), {} states visited in {:?}",
                spec.name,
                outcome.cost,
                outcome.plan.num_phases(),
                outcome.stats.states_visited,
                outcome.stats.planning_time
            );
            for (i, phase) in outcome.plan.phases().iter().enumerate() {
                println!(
                    "  phase {}: {} x{}",
                    i + 1,
                    spec.actions.kind(phase.kind),
                    phase.blocks.len()
                );
            }
            if let Some(pos) = args.iter().position(|a| a == "-o") {
                let Some(out) = args.get(pos + 1) else {
                    return usage();
                };
                let mut shipped = npd;
                attach_plan(&mut shipped, &spec, &outcome.plan);
                match shipped.to_json_pretty() {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(out, json) {
                            eprintln!("cannot write {out}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("phases attached to {out}");
                    }
                    Err(e) => {
                        eprintln!("serialization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Some("audit") if args.len() == 2 => {
            let Some(id) = parse_preset(&args[1]) else {
                eprintln!("unknown preset {:?}", args[1]);
                return ExitCode::from(2);
            };
            let preset = presets::build_for_bench(id);
            let spec = match MigrationBuilder::for_preset(&preset, &MigrationOptions::default()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot build migration: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let outcome = match AStarPlanner::default().plan(&spec) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("planning failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", audit_plan(&spec, &outcome.plan));
            let opex = OpexModel::default();
            let priced = opex.price(&spec, &outcome.plan);
            println!(
                "opex: {} phases x ${:.0}k setup + {:.0} crew-days = ${:.0}k total (~{:.0} working days)",
                priced.phases,
                opex.phase_setup_cost / 1000.0,
                priced.crew_days,
                priced.total_cost / 1000.0,
                priced.duration_days
            );
            println!(
                "recommended alpha for this workload: {:.3}",
                opex.recommended_alpha(BlockClass::FaGrid)
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
