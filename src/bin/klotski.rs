//! `klotski` — command-line migration planner.
//!
//! ```text
//! klotski export <preset> <out.json>        # write a region as NPD
//! klotski plan <npd.json> [-o out.json]     # plan the migration an NPD implies
//! klotski audit <preset>                    # plan + per-phase safety audit
//! klotski run --scenario <file>             # execute a scripted controller run
//! klotski trace <trace.jsonl>               # validate a recorded trace
//! klotski trace summarize <trace.jsonl>     # span-family latency table + run timeline
//! klotski serve [--addr A] [...]            # run the planning daemon
//! klotski presets                           # list the built-in topologies
//! ```
//!
//! `plan --trace <path>` records a hierarchical JSONL trace of the run
//! (spans and progress events, see `klotski::telemetry`); `plan --stats`
//! prints the search-introspection counters after the plan.
//!
//! The `plan` subcommand mirrors the §5 EDP-Lite pipeline: NPD in, ordered
//! phase list out (attached to the NPD document when `-o` is given). Both
//! `plan` and the `serve` daemon call the same
//! [`klotski::service::pipeline::plan_document`], so a served plan is
//! byte-identical to the file this CLI writes.

use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::opex::OpexModel;
use klotski::core::planner::{AStarPlanner, Planner, SearchBudget};
use klotski::core::report::audit_plan;
use klotski::core::BlockClass;
use klotski::npd::api::PlanRequestOptions;
use klotski::npd::convert::region_to_npd;
use klotski::npd::Npd;
use klotski::service::pipeline::plan_document;
use klotski::service::{signal, Service, ServiceConfig};
use klotski::topology::presets::{self, PresetId};
use std::process::ExitCode;
use std::time::Duration;

/// A fatal CLI error: message plus process exit code (1 = operation
/// failed, 2 = usage error). Every failure path funnels through this one
/// type so error reporting stays uniform.
struct CliError {
    message: String,
    code: u8,
}

impl CliError {
    fn failure(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }

    fn usage() -> Self {
        Self {
            message: "usage:\n  klotski presets\n  klotski export <preset> <out.json>\n  \
                 klotski plan <npd.json> [-o out.json] [--planner astar|dp] \
                 [--theta X] [--alpha X] [--trace out.jsonl] [--stats] \
                 [--no-incremental] [--esc-cache-cap N] [--ensemble K@SEED]\n  \
                 klotski audit <preset>\n  \
                 klotski run --scenario <file> [-o report.json] [--deadline-ms N] \
                 [--flight-dump DIR] [--trace out.jsonl]\n  \
                 klotski trace <trace.jsonl>\n  \
                 klotski trace summarize <trace.jsonl>\n  \
                 klotski serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
                 [--cache N] [--deadline-ms N] [--sse-max-subscribers N] \
                 [--state-dir DIR] [--no-coalesce]"
                .into(),
            code: 2,
        }
    }
}

/// Replaces the dozen hand-rolled `Err(e) => { eprintln!(...); return
/// ExitCode::FAILURE }` branches: annotate any `Result` with context and
/// `?` it.
trait OrFail<T> {
    fn or_fail(self, what: impl std::fmt::Display) -> Result<T, CliError>;
}

impl<T, E: std::fmt::Display> OrFail<T> for Result<T, E> {
    fn or_fail(self, what: impl std::fmt::Display) -> Result<T, CliError> {
        self.map_err(|e| CliError::failure(format!("{what}: {e}")))
    }
}

fn parse_preset(name: &str) -> Result<PresetId, CliError> {
    PresetId::ALL
        .into_iter()
        .find(|id| id.to_string().eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError::failure(format!("unknown preset {name:?}")))
}

/// Pulls `--flag value` out of an argument list, parsing the value.
fn take_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(CliError::failure(format!("{flag} needs a value")));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    value
        .parse()
        .map(Some)
        .or_fail(format_args!("bad {flag} value {value:?}"))
}

/// Pulls a valueless `--switch` out of an argument list.
fn take_switch(args: &mut Vec<String>, switch: &str) -> bool {
    match args.iter().position(|a| a == switch) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{}", e.message);
            ExitCode::from(e.code)
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("presets") => cmd_presets(),
        Some("export") if args.len() == 3 => cmd_export(&args[1], &args[2]),
        Some("plan") if args.len() >= 2 => {
            args.remove(0);
            cmd_plan(args)
        }
        Some("audit") if args.len() == 2 => cmd_audit(&args[1]),
        Some("run") => {
            args.remove(0);
            cmd_run(args)
        }
        Some("trace") if args.len() == 2 => cmd_trace(&args[1]),
        Some("trace") if args.len() == 3 && args[1] == "summarize" => cmd_trace_summarize(&args[2]),
        Some("serve") => {
            args.remove(0);
            cmd_serve(args)
        }
        _ => Err(CliError::usage()),
    }
}

fn cmd_presets() -> Result<(), CliError> {
    println!("built-in evaluation topologies (Table 3):");
    for id in PresetId::ALL {
        let p = presets::build_for_bench(id);
        println!(
            "  {:<7} {:>6} switches {:>7} circuits",
            id.to_string(),
            p.topology.num_switches(),
            p.topology.num_circuits()
        );
    }
    Ok(())
}

fn cmd_export(preset: &str, out: &str) -> Result<(), CliError> {
    let id = parse_preset(preset)?;
    let npd = region_to_npd(&presets::config(id));
    let json = npd.to_json_pretty().or_fail("serialization failed")?;
    std::fs::write(out, json).or_fail(format_args!("cannot write {out}"))?;
    println!("wrote {out} ({})", npd.name);
    Ok(())
}

fn cmd_plan(mut args: Vec<String>) -> Result<(), CliError> {
    // `--ensemble K@SEED`: plan so every checked state is safe under all K
    // realized traffic matrices. The seed is explicit and required, so runs
    // are byte-for-byte reproducible across machines.
    let ensemble = match take_flag::<String>(&mut args, "--ensemble")? {
        Some(spec) => Some(
            klotski::core::EnsembleSpec::parse(&spec)
                .or_fail(format_args!("bad --ensemble value {spec:?}"))?,
        ),
        None => None,
    };
    let options = PlanRequestOptions {
        theta: take_flag(&mut args, "--theta")?,
        alpha: take_flag(&mut args, "--alpha")?,
        planner: take_flag(&mut args, "--planner")?,
        deadline_ms: take_flag(&mut args, "--deadline-ms")?,
        incremental: take_switch(&mut args, "--no-incremental").then_some(false),
        esc_cache_cap: take_flag(&mut args, "--esc-cache-cap")?,
        ensemble,
    };
    let out = take_flag::<String>(&mut args, "-o")?;
    let trace = take_flag::<String>(&mut args, "--trace")?;
    let stats = take_switch(&mut args, "--stats");
    let [input] = args.as_slice() else {
        return Err(CliError::usage());
    };

    if let Some(path) = &trace {
        let sink = klotski::telemetry::FileSink::create(path)
            .or_fail(format_args!("cannot open trace file {path}"))?;
        klotski::telemetry::install(std::sync::Arc::new(sink));
    }

    let json = std::fs::read_to_string(input).or_fail(format_args!("cannot read {input}"))?;
    let npd = Npd::from_json(&json).or_fail("invalid NPD")?;
    let mut budget = SearchBudget::default();
    if let Some(ms) = options.deadline_ms {
        budget = budget.with_deadline(std::time::Instant::now() + Duration::from_millis(ms));
    }
    let result = {
        let _span = klotski::telemetry::span!("cli.plan", "input" = input.as_str());
        plan_document(&npd, &options, budget, None)
    };
    // Flush (and stop tracing) before reporting, so the trace file is
    // complete even when planning failed.
    if trace.is_some() {
        klotski::telemetry::uninstall();
    }
    let artifact = result.map_err(|e| CliError::failure(e.to_string()))?;

    let s = &artifact.summary;
    println!(
        "{}: cost {} ({} phases), {} states visited in {}ms",
        s.name, s.cost, s.phases, s.states_visited, s.planning_ms
    );
    for phase in &artifact.audit.phases {
        println!(
            "  phase {}: {} x{}",
            phase.index, phase.action, phase.blocks
        );
    }
    if stats {
        print_search_stats(s);
    }
    if let Some(path) = trace {
        println!("trace written to {path}");
    }
    if let Some(out) = out {
        std::fs::write(&out, &artifact.plan_json).or_fail(format_args!("cannot write {out}"))?;
        println!("phases attached to {out}");
    }
    Ok(())
}

/// The `--stats` search summary table.
fn print_search_stats(s: &klotski::npd::api::PlanSummary) {
    let hit_rate = if s.sat_checks == 0 {
        0.0
    } else {
        100.0 * s.cache_hits as f64 / s.sat_checks as f64
    };
    println!("search statistics ({}):", s.planner);
    println!("  states visited    {:>10}", s.states_visited);
    println!("  states generated  {:>10}", s.states_generated);
    println!("  states pruned     {:>10}", s.states_pruned);
    println!("  states deduped    {:>10}", s.states_deduped);
    println!("  sat checks        {:>10}", s.sat_checks);
    println!(
        "  esc cache hits    {:>10}  ({hit_rate:.1}% hit rate)",
        s.cache_hits
    );
    println!("  full evaluations  {:>10}", s.full_evaluations);
    let dests = s.incremental_clean + s.incremental_dirty;
    if dests > 0 {
        let incr_rate = 100.0 * s.incremental_clean as f64 / dests as f64;
        println!(
            "  incr clean dests  {:>10}  ({incr_rate:.1}% replayed)",
            s.incremental_clean
        );
        println!("  incr dirty dests  {:>10}", s.incremental_dirty);
    }
    println!(
        "  esc cache size    {:>10}  (~{} KiB)",
        s.esc_entries,
        s.esc_bytes / 1024
    );
    println!("  satcheck time     {:>8}ms", s.satcheck_ms);
    println!(
        "  other search time {:>8}ms",
        s.planning_ms.saturating_sub(s.satcheck_ms)
    );
    println!("  total planning    {:>8}ms", s.planning_ms);
    if s.ensemble_matrices > 0 {
        println!(
            "  ensemble          {:>10}  matrices, {} matrix checks, {} short-circuits",
            s.ensemble_matrices, s.ensemble_matrix_checks, s.ensemble_short_circuits
        );
        for (k, m) in s.ensemble.iter().enumerate() {
            println!(
                "    [{k}] {:<22} {:>8} checks {:>7} kills {:>8.1}ms",
                m.label,
                m.checks,
                m.kills,
                m.wall_ns as f64 / 1e6
            );
        }
    }
}

fn cmd_trace(path: &str) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path).or_fail(format_args!("cannot read {path}"))?;
    let summary = klotski::telemetry::validate_trace(&text)
        .map_err(|e| CliError::failure(format!("{path}: {e}")))?;
    println!(
        "trace ok: {} spans, {} events, {} roots",
        summary.spans, summary.events, summary.roots
    );
    Ok(())
}

/// `trace summarize`: per-span-family latency table plus a controller run
/// timeline, both derived from the same validated schema the `trace`
/// subcommand checks.
fn cmd_trace_summarize(path: &str) -> Result<(), CliError> {
    use klotski::telemetry::Record;

    let text = std::fs::read_to_string(path).or_fail(format_args!("cannot read {path}"))?;
    klotski::telemetry::validate_trace(&text)
        .map_err(|e| CliError::failure(format!("{path}: {e}")))?;
    let records: Vec<Record> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| klotski::telemetry::parse_line(l).expect("validated above"))
        .collect();

    // Self-time per span: its duration minus the duration of its direct
    // children (clamped: concurrent children can overlap the parent).
    let mut child_us: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for r in &records {
        if let Record::Span { parent, dur_us, .. } = r {
            if *parent != 0 {
                *child_us.entry(*parent).or_default() += dur_us;
            }
        }
    }
    let mut families: std::collections::BTreeMap<&str, Vec<u64>> =
        std::collections::BTreeMap::new();
    let mut event_counts: std::collections::BTreeMap<&str, usize> =
        std::collections::BTreeMap::new();
    for r in &records {
        match r {
            Record::Span {
                name, id, dur_us, ..
            } => {
                let self_us = dur_us.saturating_sub(child_us.get(id).copied().unwrap_or(0));
                families.entry(name).or_default().push(self_us);
            }
            Record::Event { name, .. } => *event_counts.entry(name).or_default() += 1,
        }
    }

    println!("span families ({path}):");
    println!(
        "  {:<24} {:>6} {:>12} {:>12} {:>12}",
        "name", "count", "total self", "p50 self", "p99 self"
    );
    for (name, mut self_times) in families {
        self_times.sort_unstable();
        let total: u64 = self_times.iter().sum();
        println!(
            "  {:<24} {:>6} {:>10.3}ms {:>10.3}ms {:>10.3}ms",
            name,
            self_times.len(),
            total as f64 / 1000.0,
            quantile_us(&self_times, 0.50) as f64 / 1000.0,
            quantile_us(&self_times, 0.99) as f64 / 1000.0,
        );
    }
    if !event_counts.is_empty() {
        println!("events:");
        for (name, count) in event_counts {
            println!("  {name:<24} {count:>6}");
        }
    }

    // Ensemble breakdown: one `satcheck.ensemble` event per matrix, emitted
    // by planners that ran an ensemble checker.
    let ensemble_rows: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            Record::Event { name, fields, .. } if *name == "satcheck.ensemble" => Some(fields),
            _ => None,
        })
        .collect();
    if !ensemble_rows.is_empty() {
        println!("ensemble matrices:");
        println!(
            "  {:<8} {:<6} {:<22} {:>10} {:>8} {:>12}",
            "planner", "matrix", "label", "checks", "kills", "wall"
        );
        for fields in ensemble_rows {
            let text = |key: &str| {
                fields
                    .get(key)
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string()
            };
            let num = |key: &str| fields.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
            println!(
                "  {:<8} {:<6} {:<22} {:>10} {:>8} {:>10.1}ms",
                text("planner"),
                num("matrix"),
                text("label"),
                num("checks"),
                num("kills"),
                num("wall_us") / 1000.0,
            );
        }
    }

    // Controller timeline: phase/rollback spans in wall order, with the
    // fields the engine attaches (step, action, outcome).
    let mut timeline: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            Record::Span {
                name,
                start_us,
                fields,
                ..
            } if name.starts_with("controller.") => Some((start_us, name, fields)),
            _ => None,
        })
        .collect();
    if timeline.is_empty() {
        return Ok(());
    }
    timeline.sort_by_key(|(start, _, _)| **start);
    let epoch = *timeline[0].0;
    println!("controller timeline:");
    for (start, name, fields) in timeline {
        let mut detail = String::new();
        for key in ["step", "at_step", "action", "blocks", "canary", "outcome"] {
            if let Some(v) = fields.get(key) {
                let rendered = v
                    .as_str()
                    .map(str::to_string)
                    .or_else(|| v.as_f64().map(|n| format!("{n}")))
                    .or_else(|| v.as_bool().map(|b| b.to_string()))
                    .unwrap_or_default();
                detail.push_str(&format!("  {key}={rendered}"));
            }
        }
        println!(
            "  +{:>9.3}ms  {:<20}{detail}",
            (start - epoch) as f64 / 1000.0,
            name
        );
    }
    Ok(())
}

/// Nearest-rank quantile over a sorted slice (empty → 0).
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn cmd_audit(preset: &str) -> Result<(), CliError> {
    let id = parse_preset(preset)?;
    let preset = presets::build_for_bench(id);
    let spec = MigrationBuilder::for_preset(&preset, &MigrationOptions::default())
        .or_fail("cannot build migration")?;
    let outcome = AStarPlanner::default()
        .plan(&spec)
        .or_fail("planning failed")?;
    print!("{}", audit_plan(&spec, &outcome.plan));
    let opex = OpexModel::default();
    let priced = opex.price(&spec, &outcome.plan);
    println!(
        "opex: {} phases x ${:.0}k setup + {:.0} crew-days = ${:.0}k total (~{:.0} working days)",
        priced.phases,
        opex.phase_setup_cost / 1000.0,
        priced.crew_days,
        priced.total_cost / 1000.0,
        priced.duration_days
    );
    println!(
        "recommended alpha for this workload: {:.3}",
        opex.recommended_alpha(BlockClass::FaGrid)
    );
    Ok(())
}

fn cmd_run(mut args: Vec<String>) -> Result<(), CliError> {
    let scenario_path = take_flag::<String>(&mut args, "--scenario")?
        .ok_or_else(|| CliError::failure("run needs --scenario <file>"))?;
    let out = take_flag::<String>(&mut args, "-o")?;
    let deadline_ms = take_flag::<u64>(&mut args, "--deadline-ms")?;
    let flight_dump = take_flag::<String>(&mut args, "--flight-dump")?;
    let trace = take_flag::<String>(&mut args, "--trace")?;
    if !args.is_empty() {
        return Err(CliError::usage());
    }

    let json = std::fs::read_to_string(&scenario_path)
        .or_fail(format_args!("cannot read {scenario_path}"))?;
    let scenario = klotski::controller::Scenario::from_json(&json)
        .or_fail(format_args!("invalid scenario {scenario_path}"))?;
    if let Some(path) = &trace {
        let sink = klotski::telemetry::FileSink::create(path)
            .or_fail(format_args!("cannot open trace file {path}"))?;
        klotski::telemetry::install(std::sync::Arc::new(sink));
    }
    let deadline = deadline_ms.map(|ms| std::time::Instant::now() + Duration::from_millis(ms));
    let result = klotski::controller::run_scenario(&scenario, deadline);
    if trace.is_some() {
        klotski::telemetry::uninstall();
    }
    let report = result.map_err(|e| CliError::failure(e.to_string()))?;

    println!(
        "{}: initial plan {} phases in {:.1}ms ({} states)",
        report.name,
        report.initial_phases,
        report.initial_latency_ms,
        report.initial_stats.states_visited
    );
    for s in &report.steps {
        let verdict = if s.paused {
            "PAUSE"
        } else if s.safe {
            "ok"
        } else {
            "UNSAFE"
        };
        let canary = if s.canary { " canary" } else { "" };
        let drift = if s.drift_circuits + s.drift_switches > 0 {
            format!("  drift {}c/{}s", s.drift_circuits, s.drift_switches)
        } else {
            String::new()
        };
        println!(
            "  step {:>3}  {} x{}{canary}  util {:.3}{drift}  {verdict}",
            s.step, s.action, s.blocks, s.max_utilization
        );
        if let Some(reason) = &s.pause_reason {
            println!("            reason: {reason}");
        }
    }
    for r in &report.replans {
        if r.ok {
            println!(
                "  replan after step {}: {} phases in {:.1}ms \
                 ({} states, {} esc hits, {} incr replays)",
                r.at_step,
                r.phases,
                r.latency_ms,
                r.stats.states_visited,
                r.stats.cache_hits,
                r.stats.incremental_clean
            );
        } else {
            println!(
                "  replan after step {} FAILED in {:.1}ms: {}",
                r.at_step,
                r.latency_ms,
                r.error.as_deref().unwrap_or("unknown")
            );
        }
    }
    if let Some(rb) = &report.rollback {
        let to = match rb.to_step {
            Some(s) => format!("step {s}"),
            None => "initial state".to_string(),
        };
        println!(
            "  rollback at step {} to {to} ({} snapshots skipped, {})",
            rb.at_step,
            rb.snapshots_skipped,
            if rb.safe { "audits safe" } else { "UNSAFE" }
        );
    }
    let outcome = if report.completed {
        "completed"
    } else if report.rolled_back {
        "rolled back"
    } else {
        "aborted"
    };
    println!(
        "{outcome}: {} steps, {} audits, {} pauses, {} replans  (fingerprint {:016x})",
        report.steps.len(),
        report.audit_stats.live_audits,
        report.pauses(),
        report.replans.len(),
        report.fingerprint()
    );
    if let Some(reason) = &report.abort_reason {
        println!("reason: {reason}");
    }
    if let Some(path) = &trace {
        println!("trace written to {path}");
    }
    if let Some(out) = out {
        let json = serde_json::to_string_pretty(&report).or_fail("serialization failed")?;
        std::fs::write(&out, json).or_fail(format_args!("cannot write {out}"))?;
        println!("report written to {out}");
    }
    if let Some(dir) = flight_dump {
        match &report.flight {
            Some(bundle) => {
                std::fs::create_dir_all(&dir).or_fail(format_args!("cannot create {dir}"))?;
                // Bundle names inherit migration names like "topo-A/hgrid",
                // so flatten path separators before using them as a file.
                let file =
                    format!("{}-{}.json", bundle.name, bundle.trigger).replace(['/', '\\'], "-");
                let path = format!("{dir}/{file}");
                std::fs::write(&path, bundle.to_json())
                    .or_fail(format_args!("cannot write {path}"))?;
                println!(
                    "flight bundle ({}, {} events) written to {path}",
                    bundle.trigger,
                    bundle.events.len()
                );
            }
            None => println!("no flight bundle: the run never paused, rolled back, or aborted"),
        }
    }
    if report.completed {
        Ok(())
    } else {
        Err(CliError::failure("migration did not complete"))
    }
}

fn cmd_serve(mut args: Vec<String>) -> Result<(), CliError> {
    let mut config = ServiceConfig::default();
    if let Some(addr) = take_flag::<String>(&mut args, "--addr")? {
        config.addr = addr;
    } else {
        config.addr = "127.0.0.1:8645".into();
    }
    if let Some(workers) = take_flag(&mut args, "--workers")? {
        config.workers = workers;
    }
    if let Some(depth) = take_flag(&mut args, "--queue-depth")? {
        config.queue_depth = depth;
    }
    if let Some(cache) = take_flag(&mut args, "--cache")? {
        config.cache_capacity = cache;
    }
    if let Some(ms) = take_flag::<u64>(&mut args, "--deadline-ms")? {
        config.default_deadline = Some(Duration::from_millis(ms));
    }
    if let Some(cap) = take_flag(&mut args, "--sse-max-subscribers")? {
        config.sse_max_subscribers = cap;
    }
    if let Some(dir) = take_flag::<String>(&mut args, "--state-dir")? {
        config.state_dir = Some(std::path::PathBuf::from(dir));
    }
    if take_switch(&mut args, "--no-coalesce") {
        config.coalesce = false;
    }
    if !args.is_empty() {
        return Err(CliError::usage());
    }

    signal::install_handlers();
    let service = Service::start(config.clone()).or_fail("cannot start service")?;
    println!(
        "klotski-service listening on http://{} ({} workers, queue depth {})",
        service.local_addr(),
        config.workers,
        config.queue_depth
    );
    if let Some(dir) = &config.state_dir {
        println!("warm state: journal under {}", dir.display());
    }
    println!(
        "endpoints: POST /v1/plan  POST /v1/audit  POST /v1/run  GET /v1/jobs/{{id}}  GET /v1/jobs/{{id}}/events  GET /metrics  GET /healthz"
    );
    service.run_until_signalled();
    println!("drained; bye");
    Ok(())
}
